"""Monte-Carlo mismatch analysis.

The paper's sizing tool "permits to undergo statistical analysis to check
the reliability of the synthesized circuit".  We implement the standard
Pelgrom mismatch model: each device draws an independent threshold shift
with ``sigma_VT = A_VT / sqrt(W L)`` and a relative current-factor error
with ``sigma_beta = A_beta / sqrt(W L)``, then the requested measurement is
re-run per sample.

The compiled engine draws **all** samples up front (one vectorized RNG
call whose stream matches the legacy per-device draw order), compiles the
feedback circuit into one :class:`~repro.analysis.stamps.StampProgram`
and re-biases it per sample instead of re-cloning and re-stamping; with
``workers=N`` the pre-drawn sample rows are partitioned over a process
pool.  Because the draws are fixed before any work is scheduled, results
are identical for any worker count.

Pooled dispatch goes through the persistent executor runtime
(:mod:`repro.runtime`): the pool is reused across calls, the sample
matrices travel by shared memory (:mod:`repro.runtime.shm`), and workers
hold the compiled feedback program in a content-keyed resident cache so
repeated dispatches ship a fingerprint instead of the testbench.  Each
layer degrades independently to the old per-run behavior when disabled,
and none of them changes a single sampled value.
"""

from __future__ import annotations

import hashlib
import math
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import telemetry
from repro.analysis.engine import COMPILED, resolve_engine
from repro.analysis.metrics import OtaTestbench, feedback_dc_solution
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.resilience.budget import Budget
from repro.resilience.journal import RunJournal
from repro.runtime import pool as runtime_pool
from repro.runtime import shm as runtime_shm
from repro.telemetry import metrics, monitor


@dataclass
class ShardStatus:
    """Fate of one worker-pool shard of pre-drawn samples."""

    index: int
    span: Tuple[int, int]
    """Half-open sample range ``[lo, hi)`` this shard covers."""
    attempts: int = 0
    status: str = "pending"
    """``ok`` | ``resubmitted`` | ``in-process`` | ``failed`` |
    ``journaled`` (restored from a run journal, not re-run)."""
    error: Optional[str] = None
    """Last failure seen (worker death, timeout), even when recovered."""


@dataclass
class MonteCarloResult:
    """Sampled statistic collection."""

    samples: Dict[str, List[float]] = field(default_factory=dict)
    n_failed: int = 0
    """Samples lost to unrecoverable shard failures (0 on a clean run)."""
    shards: List[ShardStatus] = field(default_factory=list)
    """Per-shard dispatch record when a process pool was used."""

    def mean(self, key: str) -> float:
        return float(np.mean(self.samples[key]))

    def std(self, key: str) -> float:
        return float(np.std(self.samples[key], ddof=1))

    def worst(self, key: str) -> float:
        """Sample farthest from the mean."""
        values = np.asarray(self.samples[key])
        return float(values[np.argmax(np.abs(values - values.mean()))])

    def summary(self) -> str:
        lines = []
        for key in sorted(self.samples):
            lines.append(
                f"{key}: mean={self.mean(key):.4g} sigma={self.std(key):.4g}"
            )
        return "\n".join(lines)


def apply_mismatch(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Clone ``circuit`` with Pelgrom-sampled per-device mismatch."""
    clone = circuit.clone(circuit.name + "_mc")
    for mos in clone.mos_devices:
        assert mos.params is not None
        area = mos.w * mos.l
        sigma_vt = mos.params.avt / math.sqrt(area)
        sigma_beta = mos.params.abeta / math.sqrt(area)
        mos.mismatch_vth = float(rng.normal(0.0, sigma_vt))
        mos.mismatch_beta = float(rng.normal(0.0, sigma_beta))
    return clone


def draw_mismatch_samples(
    circuit: Circuit, runs: int, seed: int
) -> Tuple[List[str], np.ndarray, np.ndarray]:
    """All Pelgrom samples for ``runs`` trials in one vectorized draw.

    Returns ``(names, vth, beta)`` with the matrices shaped
    ``(runs, n_devices)`` in circuit device order.  The flattened draw
    order (run-major, then device, then vth-before-beta) reproduces the
    stream :func:`apply_mismatch` consumes from the same seed, so the
    pre-drawn path is sample-for-sample identical to the legacy loop.
    """
    devices = circuit.mos_devices
    sigma_vt = np.empty(len(devices))
    sigma_beta = np.empty(len(devices))
    for i, mos in enumerate(devices):
        assert mos.params is not None
        root_area = math.sqrt(mos.w * mos.l)
        sigma_vt[i] = mos.params.avt / root_area
        sigma_beta[i] = mos.params.abeta / root_area
    rng = np.random.default_rng(seed)
    sigma = np.stack([sigma_vt, sigma_beta], axis=1)
    draws = rng.normal(0.0, np.broadcast_to(sigma, (runs,) + sigma.shape))
    return (
        [mos.name for mos in devices],
        draws[:, :, 0],
        draws[:, :, 1],
    )


def _testbench_with_mismatch(
    tb: OtaTestbench,
    names: Sequence[str],
    vth_row: np.ndarray,
    beta_row: np.ndarray,
) -> OtaTestbench:
    """A cloned testbench with one pre-drawn sample row applied."""
    clone = tb.circuit.clone(tb.circuit.name + "_mc")
    for name, d_vth, d_beta in zip(names, vth_row, beta_row):
        mos = clone.mos(name)
        mos.mismatch_vth = float(d_vth)
        mos.mismatch_beta = float(d_beta)
    return OtaTestbench(
        circuit=clone,
        source_pos=tb.source_pos,
        source_neg=tb.source_neg,
        input_neg_net=tb.input_neg_net,
        output_net=tb.output_net,
        supply_sources=tb.supply_sources,
        slew_devices=tb.slew_devices,
    )


class _CompiledOffset:
    """The default offset measurement, compiled once per testbench.

    Holds the feedback-loop :class:`~repro.analysis.stamps.StampProgram`
    plus the permutation that maps pre-drawn sample columns (circuit
    device order) onto program device order.  Compilation is a pure
    function of the testbench, and :meth:`measure` is stateless across
    calls (``set_mismatch`` deltas are overwritten per sample;
    :meth:`EnsembleProgram.from_mismatch
    <repro.analysis.ensemble.EnsembleProgram.from_mismatch>` takes
    explicit rows), so one instance may serve any number of shards —
    which is exactly what the worker-resident cache in
    :mod:`repro.runtime.pool` does with it.
    """

    __slots__ = ("names", "program", "out_node", "vcm", "permutation")

    def __init__(self, tb: OtaTestbench, names: Sequence[str]):
        from repro.analysis.stamps import StampProgram

        feedback = tb.circuit.clone(tb.circuit.name + "_fb")
        feedback.remove(tb.source_neg)
        feedback.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
        self.program = StampProgram(feedback)
        self.out_node = self.program.index.node(tb.output_net)
        self.vcm = tb.common_mode_voltage()
        self.names = tuple(names)
        order = {name: i for i, name in enumerate(self.names)}
        self.permutation = np.array(
            [order[name] for name in self.program.mos_names], dtype=np.intp
        )

    def measure(
        self,
        vth_rows: np.ndarray,
        beta_rows: np.ndarray,
        ensemble: Optional[str] = None,
    ) -> List[Dict[str, float]]:
        """Offset samples for a chunk of pre-drawn rows.

        On the stacked ensemble engine (the default) every row becomes
        one member of a single batched ``(K, n, n)`` Newton solve; the
        per-sample loop below is the golden reference, selected via
        :data:`~repro.analysis.engine.ensemble_engine`.
        """
        from repro.analysis.engine import STACKED, ensemble_engine

        if ensemble_engine.resolve(ensemble) == STACKED and len(vth_rows):
            from repro.analysis.ensemble import EnsembleProgram

            stacked = EnsembleProgram.from_mismatch(
                self.program,
                np.asarray(vth_rows)[:, self.permutation],
                np.asarray(beta_rows)[:, self.permutation],
            )
            solution = stacked.solve()
            # The per-sample loop raises at the first failing sample;
            # match that contract so shard recovery stays unchanged.
            solution.raise_on_failure()
            return [
                {"offset_voltage": float(v[self.out_node]) - self.vcm}
                for v in solution.voltages
            ]
        stats: List[Dict[str, float]] = []
        for vth_row, beta_row in zip(vth_rows, beta_rows):
            self.program.set_mismatch(
                vth_row[self.permutation], beta_row[self.permutation]
            )
            voltages, _iterations, _gmin = self.program.solve_voltages()
            stats.append(
                {"offset_voltage": float(voltages[self.out_node]) - self.vcm}
            )
        return stats


def _offset_chunk(
    tb: OtaTestbench,
    names: Sequence[str],
    vth_rows: np.ndarray,
    beta_rows: np.ndarray,
    crash: bool = False,
    ensemble: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Default measurement (input offset) for a chunk of sample rows.

    One compiled feedback program (:class:`_CompiledOffset`) is shared
    by the whole chunk.  ``ensemble`` carries the parent's resolved
    engine across the process-pool boundary (a worker is a fresh
    interpreter, so the process-wide default would not follow a scoped
    override in the parent).

    Module-level so process-pool workers can pickle it.  ``crash`` is the
    fault-injection hook: the parent's registry decides a shard should die
    and the worker obliges with an unclean exit, so the recovery path sees
    a genuine broken pool.
    """
    if crash:
        os._exit(1)
    return _CompiledOffset(tb, names).measure(vth_rows, beta_rows, ensemble)


def _measure_chunk(
    tb: OtaTestbench,
    names: Sequence[str],
    vth_rows: np.ndarray,
    beta_rows: np.ndarray,
    measure: Callable[[OtaTestbench], Dict[str, float]],
    crash: bool = False,
) -> List[Dict[str, float]]:
    """Custom measurement for a chunk of pre-drawn sample rows."""
    if crash:
        os._exit(1)
    return [
        dict(measure(_testbench_with_mismatch(tb, names, vth_row, beta_row)))
        for vth_row, beta_row in zip(vth_rows, beta_rows)
    ]


def _run_chunk(
    tb: OtaTestbench,
    names: Sequence[str],
    vth_rows: np.ndarray,
    beta_rows: np.ndarray,
    measure: Optional[Callable[[OtaTestbench], Dict[str, float]]],
    crash: bool = False,
    ensemble: Optional[str] = None,
) -> List[Dict[str, float]]:
    """Dispatch one chunk to the right measurement implementation.

    A custom ``measure`` always runs per sample (it takes a whole
    testbench); only the default offset measurement has a stacked form.
    """
    if measure is None:
        return _offset_chunk(tb, names, vth_rows, beta_rows, crash, ensemble)
    return _measure_chunk(tb, names, vth_rows, beta_rows, measure, crash)


def _run_chunk_traced(
    tb: OtaTestbench,
    names: Sequence[str],
    vth_rows: np.ndarray,
    beta_rows: np.ndarray,
    measure: Optional[Callable[[OtaTestbench], Dict[str, float]]],
    crash: bool,
    shard_index: int,
    lo: int,
    hi: int,
    ensemble: Optional[str] = None,
) -> Tuple[List[Dict[str, float]], Dict[str, object]]:
    """Worker-side traced chunk: runs under a local tracer and ships the
    picklable trace payload back with the samples.

    The parent grafts the payload under its ``mc.run`` span with
    :meth:`~repro.telemetry.core.Tracer.absorb`, which is how per-shard
    spans, worker-side solver counters and metrics aggregates (the
    :func:`~repro.telemetry.core.traced_worker` delta) survive the
    process boundary.  Tracing never touches the pre-drawn sample rows,
    so results stay bit-identical with tracing on or off.

    This is also the recovery path's workhorse: the in-process fallback
    in :func:`_run_shards` calls it directly so a shard recovered from a
    dead worker reports the same spans and counters as one that came
    home through the pool.
    """
    t0 = time.perf_counter()
    with telemetry.traced_worker(
        "mc.shard", index=shard_index, lo=lo, hi=hi
    ) as tracer:
        stats = _run_chunk(
            tb, names, vth_rows, beta_rows, measure, crash, ensemble
        )
        tracer.count("mc.samples_measured", hi - lo)
        metrics.observe("mc.shard.seconds", time.perf_counter() - t0)
    return stats, tracer.trace_payload()


class _ResidentChunk:
    """Worker-resident Monte-Carlo state: the unpickled testbench plus a
    lazily compiled :class:`_CompiledOffset`.

    Cached per worker process under the parent's payload content hash
    (:func:`repro.runtime.pool.resident_object`), so repeated dispatches
    against a persistent pool ship a fingerprint instead of re-shipping
    the testbench and recompiling the feedback program per shard.
    """

    __slots__ = ("tb", "measure", "_compiled")

    def __init__(self, tb: OtaTestbench, measure):
        self.tb = tb
        self.measure = measure
        self._compiled: Optional[_CompiledOffset] = None

    def run(
        self,
        names: Sequence[str],
        vth_rows: np.ndarray,
        beta_rows: np.ndarray,
        ensemble: Optional[str],
    ) -> List[Dict[str, float]]:
        if self.measure is not None:
            return _measure_chunk(
                self.tb, names, vth_rows, beta_rows, self.measure
            )
        compiled = self._compiled
        if compiled is None or compiled.names != tuple(names):
            compiled = _CompiledOffset(self.tb, names)
            self._compiled = compiled
        return compiled.measure(vth_rows, beta_rows, ensemble)


def _build_resident_chunk(payload: bytes) -> _ResidentChunk:
    tb, measure = pickle.loads(payload)
    return _ResidentChunk(tb, measure)


@dataclass(frozen=True)
class _ShardJob:
    """Everything one pooled shard needs, picklable by construction.

    ``payload`` is the pickled ``(tb, measure)`` recipe — or ``None``
    when the parent believes this pool generation already holds the
    resident state under ``key``.  Sample rows travel either as
    :class:`~repro.runtime.shm.ShmRef` descriptors (shared-memory
    transport) or as pickled row slices (fallback); workers compute on
    value-identical copies in both cases, so the transport never changes
    results.
    """

    key: str
    payload: Optional[bytes]
    names: Tuple[str, ...]
    lo: int
    hi: int
    index: int
    ensemble: Optional[str]
    crash: bool = False
    vth_ref: Optional[runtime_shm.ShmRef] = None
    beta_ref: Optional[runtime_shm.ShmRef] = None
    vth_rows: Optional[np.ndarray] = None
    beta_rows: Optional[np.ndarray] = None


def _job_rows(job: _ShardJob) -> Tuple[np.ndarray, np.ndarray]:
    if job.vth_ref is not None:
        return (
            runtime_shm.read(job.vth_ref, job.lo, job.hi),
            runtime_shm.read(job.beta_ref, job.lo, job.hi),
        )
    return job.vth_rows, job.beta_rows


def _run_shard_job(job: _ShardJob):
    """Pool-side shard entry (untraced parent)."""
    if job.crash:
        os._exit(1)
    try:
        state = runtime_pool.resident_object(
            job.key, job.payload, _build_resident_chunk
        )
    except runtime_pool.NeedPayload:
        return runtime_pool.CacheMiss(job.key)
    vth_rows, beta_rows = _job_rows(job)
    return state.run(job.names, vth_rows, beta_rows, job.ensemble)


def _run_shard_job_traced(job: _ShardJob):
    """Pool-side shard entry under a worker-local tracer.

    Ships ``(stats, trace_payload)`` home exactly like
    :func:`_run_chunk_traced`; a cold resident cache short-circuits to a
    :class:`~repro.runtime.pool.CacheMiss` (the abandoned tracer is
    dropped with the ``with`` block, so the resend's span is the only
    one the parent absorbs — trace shape matches the pre-runtime path).
    """
    if job.crash:
        os._exit(1)
    t0 = time.perf_counter()
    with telemetry.traced_worker(
        "mc.shard", index=job.index, lo=job.lo, hi=job.hi
    ) as tracer:
        try:
            state = runtime_pool.resident_object(
                job.key, job.payload, _build_resident_chunk
            )
        except runtime_pool.NeedPayload:
            return runtime_pool.CacheMiss(job.key)
        vth_rows, beta_rows = _job_rows(job)
        stats = state.run(job.names, vth_rows, beta_rows, job.ensemble)
        tracer.count("mc.samples_measured", job.hi - job.lo)
        metrics.observe("mc.shard.seconds", time.perf_counter() - t0)
    return stats, tracer.trace_payload()


def _shard_key(span: Tuple[int, int]) -> str:
    """Journal key of the shard covering sample rows ``[lo, hi)``."""
    return f"mc.shard.{span[0]}.{span[1]}"


#: Monte-Carlo's site vocabulary for the shared dispatch engine — the
#: budget/journal/fault names shards have always used.
_MC_SITES = runtime_pool.DispatchSites(
    fault_site="mc.worker",
    budget_round="montecarlo.shards",
    drain_site="mc.drain",
    fallback_check="mc.shard-fallback",
    budget_fallback="montecarlo.shard-fallback",
    unit_kw="shard",
    transport_shutdown_wait=True,
)


class _ShardDispatch:
    """Monte-Carlo's unit semantics for :func:`repro.runtime.pool
    .run_dispatch`: how to submit a shard, harvest its result, record a
    failure, and recover in-process.  The engine owns pool lifecycle,
    retry rounds, journal drain and budget checkpoints."""

    transport_exceptions = (pickle.PicklingError, AttributeError, TypeError)

    def __init__(
        self,
        tb: OtaTestbench,
        names: Sequence[str],
        vth: np.ndarray,
        beta: np.ndarray,
        measure,
        spans: Sequence[Tuple[int, int]],
        chunks: List[Optional[List[Dict[str, float]]]],
        statuses: List[ShardStatus],
        ensemble: Optional[str],
        journal: Optional[RunJournal],
        key: str,
        payload: bytes,
        sample_refs: Optional[Tuple[runtime_shm.ShmRef, runtime_shm.ShmRef]],
        max_workers: int,
    ):
        self.tb = tb
        self.names = tuple(names)
        self.vth = vth
        self.beta = beta
        self.measure = measure
        self.spans = spans
        self.chunks = chunks
        self.statuses = statuses
        self.ensemble = ensemble
        self.journal = journal
        self.key = key
        self.payload = payload
        self.sample_refs = sample_refs
        self.max_workers = max_workers
        self.tracer = telemetry.current()
        self._payload_sent: Set[int] = set()
        self._lease: Optional[runtime_pool.PoolLease] = None

    def begin_attempt(self, i: int) -> None:
        self.statuses[i].attempts += 1

    def has_result(self, i: int) -> bool:
        return self.chunks[i] is not None

    def submit(self, pool, lease, i: int, crash: bool, resend: bool):
        lo, hi = self.spans[i]
        self._lease = lease
        # Ship the (tb, measure) payload until this pool generation has
        # acknowledged it (or when a worker explicitly asked again); a
        # warm pool gets the content hash alone.
        ship = resend or not lease.key_shipped(self.key)
        if ship:
            self._payload_sent.add(i)
        else:
            self._payload_sent.discard(i)
        if self.sample_refs is not None:
            vth_ref, beta_ref = self.sample_refs
            job = _ShardJob(
                key=self.key, payload=self.payload if ship else None,
                names=self.names, lo=lo, hi=hi, index=i,
                ensemble=self.ensemble, crash=crash,
                vth_ref=vth_ref, beta_ref=beta_ref,
            )
        else:
            job = _ShardJob(
                key=self.key, payload=self.payload if ship else None,
                names=self.names, lo=lo, hi=hi, index=i,
                ensemble=self.ensemble, crash=crash,
                vth_rows=self.vth[lo:hi], beta_rows=self.beta[lo:hi],
            )
        entry = (
            _run_shard_job_traced if self.tracer is not None
            else _run_shard_job
        )
        return pool.submit(entry, job)

    def accept(self, i: int, outcome, submit_time: Optional[float]) -> None:
        """Accept one completed shard result (and journal it durably)."""
        seconds = None
        if self.tracer is not None:
            self.chunks[i], payload = outcome
            self.tracer.absorb(payload, t_offset=submit_time)
            if submit_time is not None:
                seconds = self.tracer.now() - submit_time
        else:
            self.chunks[i] = outcome
        self.statuses[i].status = (
            "ok" if self.statuses[i].attempts == 1 else "resubmitted"
        )
        monitor.unit_complete(
            "mc.shard", label=_shard_key(self.spans[i]), seconds=seconds
        )
        if self.journal is not None:
            lo, hi = self.spans[i]
            self.journal.record(
                _shard_key(self.spans[i]), self.chunks[i], lo=lo, hi=hi
            )
        if i in self._payload_sent and self._lease is not None:
            # At least one worker of this generation built the resident
            # state; later dispatches ship the hash alone (a cold worker
            # answers CacheMiss and gets the payload resent).
            self._lease.mark_shipped(self.key)

    def note_timeout(self, i: int, timeout: Optional[float]) -> None:
        self.statuses[i].error = f"shard timed out after {timeout:g} s"
        telemetry.count("mc.shard_retries")
        telemetry.event("mc.shard_timeout", shard=i, timeout_s=timeout)

    def note_death(self, i: int, error: BaseException) -> None:
        self.statuses[i].error = (
            f"worker died: {error!r} (shard {i} of {len(self.spans)}, "
            f"workers={self.max_workers})"
        )
        telemetry.count("mc.shard_retries")
        telemetry.event("mc.worker_death", shard=i, error=repr(error))

    def transport_error(self, i: int, error: BaseException) -> Exception:
        # A result that cannot cross back (worker-side pickling) can
        # never succeed on a retry.  (Parent-side pickling is
        # pre-validated before dispatch, because a feeder-thread
        # PicklingError wedges the pool beyond recovery on CPython
        # < 3.12.)
        return AnalysisError(
            f"Monte-Carlo shard {i} of {len(self.spans)} "
            f"(workers={self.max_workers}) could not cross the "
            f"process boundary: {error!r}; a custom measure "
            f"function must be module-level (picklable)"
        )

    def fallback(self, i: int) -> None:
        """In-process recovery after bounded retries are exhausted."""
        lo, hi = self.spans[i]
        try:
            if self.tracer is not None:
                # Run the *traced* chunk in-process so a recovered shard
                # reports the same ``mc.shard`` span and counters a pool
                # worker would have shipped home.  ``merge_metrics=False``
                # because the in-process hooks fed the shared registry
                # live; merging the delta again would double it.
                t0 = self.tracer.now()
                with telemetry.span(
                    "mc.shard_fallback", index=i, lo=lo, hi=hi
                ):
                    self.chunks[i], payload = _run_chunk_traced(
                        self.tb, self.names, self.vth[lo:hi],
                        self.beta[lo:hi], self.measure,
                        False, i, lo, hi, self.ensemble,
                    )
                    self.tracer.absorb(
                        payload, t_offset=t0, merge_metrics=False
                    )
                monitor.unit_complete(
                    "mc.shard",
                    label=_shard_key(self.spans[i]),
                    seconds=self.tracer.now() - t0,
                )
            else:
                with telemetry.span(
                    "mc.shard_fallback", index=i, lo=lo, hi=hi
                ):
                    self.chunks[i] = _run_chunk(
                        self.tb, self.names, self.vth[lo:hi],
                        self.beta[lo:hi], self.measure,
                        ensemble=self.ensemble,
                    )
                monitor.unit_complete(
                    "mc.shard", label=_shard_key(self.spans[i])
                )
            telemetry.count("mc.shards_in_process")
            self.statuses[i].status = "in-process"
            if self.journal is not None:
                self.journal.record(
                    _shard_key(self.spans[i]), self.chunks[i], lo=lo, hi=hi
                )
        except Exception as error:  # noqa: BLE001 - recorded, not masked
            telemetry.count("mc.shards_failed")
            self.statuses[i].status = "failed"
            self.statuses[i].error = repr(error)


def _run_shards(
    tb: OtaTestbench,
    names: Sequence[str],
    vth: np.ndarray,
    beta: np.ndarray,
    measure: Optional[Callable[[OtaTestbench], Dict[str, float]]],
    spans: Sequence[Tuple[int, int]],
    max_workers: int,
    shard_timeout: Optional[float],
    max_shard_retries: int,
    budget: Optional[Budget],
    ensemble: Optional[str] = None,
    journal: Optional[RunJournal] = None,
    payload: Optional[bytes] = None,
    sample_refs: Optional[
        Tuple[runtime_shm.ShmRef, runtime_shm.ShmRef]
    ] = None,
) -> Tuple[List[Optional[List[Dict[str, float]]]], List[ShardStatus]]:
    """Run every shard through the shared dispatch engine.

    A shard whose worker dies (or times out) is resubmitted on a fresh
    pool up to ``max_shard_retries`` times, then run in-process; only a
    shard that *also* fails in-process is reported as lost.  Because every
    sample row was drawn before any work was scheduled, a recovered shard
    reproduces exactly the values the dead worker would have produced.

    With a ``journal``, shards already recorded by a previous run are
    restored instead of re-run (bit-identical, for the same pre-drawn
    reason), every completed shard is appended durably, and a shutdown
    signal drains in-flight workers into the journal before raising
    :class:`~repro.errors.RunInterrupted`.

    ``payload`` is the pre-validated pickled ``(tb, measure)`` recipe —
    its content hash keys the worker-resident compiled state, so a warm
    persistent pool receives the hash instead of the testbench.
    ``sample_refs`` selects the shared-memory row transport.
    """
    chunks: List[Optional[List[Dict[str, float]]]] = [None] * len(spans)
    statuses = [
        ShardStatus(index=i, span=span) for i, span in enumerate(spans)
    ]
    monitor.declare("mc.shard", len(spans))
    pending = []
    for i, span in enumerate(spans):
        if journal is not None and journal.has(_shard_key(span)):
            chunks[i] = journal.result(_shard_key(span))
            statuses[i].status = "journaled"
            telemetry.count("mc.journaled_shards")
            monitor.unit_complete(
                "mc.shard", label=_shard_key(span), restored=True
            )
        else:
            pending.append(i)
    if payload is None:
        payload = pickle.dumps((tb, measure))
    dispatch = _ShardDispatch(
        tb, names, vth, beta, measure, spans, chunks, statuses,
        ensemble, journal,
        key=hashlib.sha256(payload).hexdigest(),
        payload=payload,
        sample_refs=sample_refs,
        max_workers=max_workers,
    )
    runtime_pool.run_dispatch(
        dispatch, pending, max_workers, shard_timeout, max_shard_retries,
        budget, journal, _MC_SITES,
    )
    return chunks, statuses


def run_monte_carlo(
    tb: OtaTestbench,
    runs: int = 50,
    seed: int = 1234,
    measure: Optional[Callable[[OtaTestbench], Dict[str, float]]] = None,
    engine: Optional[str] = None,
    workers: int = 1,
    budget: Optional[Budget] = None,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 1,
    ensemble: Optional[str] = None,
    journal: Optional[RunJournal] = None,
) -> MonteCarloResult:
    """Sample mismatch and collect statistics.

    By default only the input-referred offset is measured per sample (one
    DC solve); pass ``measure`` for a custom (more expensive) extraction
    returning a dict of named statistics.  ``workers > 1`` partitions the
    pre-drawn samples over a process pool (compiled engine only; a custom
    ``measure`` must then be picklable, i.e. a module-level function).
    Results are independent of ``workers`` because every sample is drawn
    before any work is scheduled — and this holds through shard recovery:
    a shard whose worker dies (or exceeds ``shard_timeout`` seconds) is
    resubmitted up to ``max_shard_retries`` times, then run in-process,
    reproducing exactly the rows the dead worker would have produced.  A
    shard that fails even in-process is reported, not raised: the result
    carries the surviving samples plus ``n_failed`` and per-shard
    :class:`ShardStatus` records.  ``budget`` bounds wall-clock time at
    sample/shard boundaries via
    :class:`~repro.errors.BudgetExceededError`.

    ``ensemble`` picks how the default offset measurement evaluates each
    shard of pre-drawn rows on the compiled engine: ``"stacked"`` (one
    batched ensemble Newton per shard, the default) or ``"per-sample"``
    (the golden per-row loop); ``None`` follows
    :data:`~repro.analysis.engine.ensemble_engine`.  The value is
    resolved here, in the parent, so scoped overrides reach pool workers.

    ``journal`` makes the run crash-safe: completed shards are appended
    durably and restored on resume without re-running.  Because every
    sample is pre-drawn from ``seed``, a resumed run's statistics are
    bit-identical to an uninterrupted run's, for any kill point.  (The
    shard partition follows ``workers``, so resuming with a *different*
    worker count re-runs the unmatched spans — still bit-identical, just
    without the skip.)
    """
    if workers < 1:
        raise AnalysisError("workers must be >= 1")
    engine_name = resolve_engine(engine)
    from repro.analysis.engine import ensemble_engine

    ensemble_name = ensemble_engine.resolve(ensemble)
    result = MonteCarloResult()

    with telemetry.span(
        "mc.run", runs=runs, workers=workers, engine=engine_name,
        ensemble=ensemble_name,
    ):
        telemetry.count("mc.samples", runs)

        if engine_name != COMPILED:
            if workers != 1:
                raise AnalysisError(
                    "workers > 1 requires the compiled engine"
                )
            # The legacy engine threads one RNG stream through the whole
            # loop, so the run journals as a single unit: all-or-nothing,
            # but still restored bit-identically on resume.
            if journal is not None:
                cached = journal.result_or_none("mc.samples.all")
                if cached is not None:
                    telemetry.count("mc.journaled_shards")
                    result.samples = cached
                    return result
            rng = np.random.default_rng(seed)
            for sample_index in range(runs):
                if journal is not None:
                    journal.check_interrupt("mc.sample")
                if budget is not None:
                    budget.check("montecarlo.sample", sample=sample_index)
                perturbed = apply_mismatch(tb.circuit, rng)
                sample_tb = OtaTestbench(
                    circuit=perturbed,
                    source_pos=tb.source_pos,
                    source_neg=tb.source_neg,
                    input_neg_net=tb.input_neg_net,
                    output_net=tb.output_net,
                    supply_sources=tb.supply_sources,
                    slew_devices=tb.slew_devices,
                )
                if measure is None:
                    _dc, offset = feedback_dc_solution(
                        sample_tb, engine=engine_name
                    )
                    stats = {"offset_voltage": offset}
                else:
                    stats = measure(sample_tb)
                for key, value in stats.items():
                    result.samples.setdefault(key, []).append(float(value))
            if journal is not None:
                journal.record("mc.samples.all", result.samples, runs=runs)
            return result

        names, vth, beta = draw_mismatch_samples(tb.circuit, runs, seed)

        if workers == 1:
            monitor.declare("mc.shard", 1)
            key = _shard_key((0, runs))
            cached = (
                journal.result_or_none(key) if journal is not None else None
            )
            if cached is not None:
                telemetry.count("mc.journaled_shards")
                monitor.unit_complete("mc.shard", label=key, restored=True)
                chunks: List[Optional[List[Dict[str, float]]]] = [cached]
            else:
                if journal is not None:
                    journal.check_interrupt("mc.start")
                if budget is not None:
                    budget.check("montecarlo.start", runs=runs)
                metrics_on = metrics.enabled()
                t0 = time.perf_counter() if metrics_on else 0.0
                with telemetry.span("mc.shard", index=0, lo=0, hi=runs):
                    chunks = [
                        _run_chunk(
                            tb, names, vth, beta, measure,
                            ensemble=ensemble_name,
                        )
                    ]
                    telemetry.count("mc.samples_measured", runs)
                shard_seconds = (
                    time.perf_counter() - t0 if metrics_on else None
                )
                if metrics_on:
                    metrics.observe("mc.shard.seconds", shard_seconds)
                monitor.unit_complete(
                    "mc.shard", label=key, seconds=shard_seconds
                )
                if journal is not None:
                    journal.record(key, chunks[0], lo=0, hi=runs)
        else:
            try:
                payload = pickle.dumps((tb, measure))
            except Exception as error:
                # Submitting an unpicklable payload would wedge the pool's
                # queue feeder (unrecoverable on CPython < 3.12), so refuse
                # before any worker is spawned.  The validated bytes are
                # the submission payload itself (and its hash keys the
                # worker-resident cache) — nothing is pickled twice.
                raise AnalysisError(
                    f"Monte-Carlo payload cannot cross the process boundary "
                    f"(workers={workers}): {error!r}; a custom measure "
                    f"function must be module-level (picklable)"
                ) from error
            bounds = np.linspace(0, runs, workers + 1).astype(int)
            spans = [
                (int(bounds[i]), int(bounds[i + 1]))
                for i in range(workers)
                if bounds[i + 1] > bounds[i]
            ]
            # Publish the pre-drawn rows once over shared memory; the
            # parent owns the segment and unlinks it whatever happens
            # (the ``finally`` covers failures and journal-guarded
            # SIGINT/SIGTERM; atexit + the faults kill hook cover hard
            # exits).  Any publication failure falls back to pickled
            # row slices — same values, same results.
            block = None
            sample_refs = None
            if runtime_shm.enabled():
                try:
                    block = runtime_shm.publish(vth, beta)
                except runtime_shm.ShmError:
                    block = None
                else:
                    refs = block.refs()
                    sample_refs = (refs[0], refs[1])
            try:
                chunks, statuses = _run_shards(
                    tb, names, vth, beta, measure, spans,
                    max_workers=len(spans),
                    shard_timeout=shard_timeout,
                    max_shard_retries=max_shard_retries,
                    budget=budget,
                    ensemble=ensemble_name,
                    journal=journal,
                    payload=payload,
                    sample_refs=sample_refs,
                )
            finally:
                if block is not None:
                    block.close()
            result.shards = statuses
            result.n_failed = sum(
                status.span[1] - status.span[0]
                for status, chunk in zip(statuses, chunks)
                if chunk is None
            )

        for chunk in chunks:
            if chunk is None:
                continue  # lost shard; accounted in n_failed
            for stats in chunk:
                for key, value in stats.items():
                    result.samples.setdefault(key, []).append(float(value))
        return result
