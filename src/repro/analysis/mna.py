"""Modified nodal analysis scaffolding.

:class:`NodeIndex` maps net names to matrix rows; voltage sources get extra
branch-current unknowns.  Stamp helpers write conductances, capacitances and
controlled sources into dense numpy matrices — dense is the right choice for
cell-level circuits (tens of nodes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.circuit.elements import VoltageSource
from repro.circuit.net import canonical, is_ground
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


class NodeIndex:
    """Net-name to unknown-index mapping for one circuit.

    Index layout: node voltages first (ground excluded), then one branch
    current per voltage source, in deterministic (sorted/insertion) order.
    """

    def __init__(self, circuit: Circuit):
        nets = [net for net in circuit.nets if not is_ground(net)]
        self._node_of: Dict[str, int] = {net: i for i, net in enumerate(nets)}
        self.node_count = len(nets)
        sources = [e for e in circuit if isinstance(e, VoltageSource)]
        self._branch_of: Dict[str, int] = {
            source.name: self.node_count + i for i, source in enumerate(sources)
        }
        self.size = self.node_count + len(sources)
        self.nets: List[str] = nets
        self.sources: List[VoltageSource] = sources

    def node(self, net: str) -> int:
        """Matrix index of a net, or -1 for ground."""
        net = canonical(net)
        if net == "0":
            return -1
        try:
            return self._node_of[net]
        except KeyError:
            raise AnalysisError(f"unknown net {net!r}") from None

    def branch(self, source_name: str) -> int:
        """Matrix index of a voltage source's branch current."""
        try:
            return self._branch_of[source_name]
        except KeyError:
            raise AnalysisError(
                f"unknown voltage source {source_name!r}"
            ) from None

    def voltages_to_dict(self, solution: Sequence[float]) -> Dict[str, float]:
        """Map a solution vector back to {net: voltage} (plus ground)."""
        result = {"0": 0.0}
        for net, index in self._node_of.items():
            result[net] = float(np.real(solution[index]))
        return result


def stamp_conductance(matrix: np.ndarray, i: int, j: int, value: float) -> None:
    """Stamp a two-terminal conductance between matrix rows i and j.

    Either index may be -1 (ground).
    """
    if i >= 0:
        matrix[i, i] += value
        if j >= 0:
            matrix[i, j] -= value
    if j >= 0:
        matrix[j, j] += value
        if i >= 0:
            matrix[j, i] -= value


def stamp_vccs(
    matrix: np.ndarray,
    out_pos: int,
    out_neg: int,
    ctrl_pos: int,
    ctrl_neg: int,
    gm: float,
) -> None:
    """Stamp a voltage-controlled current source.

    Current ``gm * (v_ctrl_pos - v_ctrl_neg)`` flows from ``out_pos`` to
    ``out_neg`` through the source (out of out_pos node).
    """
    for out, sign_out in ((out_pos, 1.0), (out_neg, -1.0)):
        if out < 0:
            continue
        for ctrl, sign_ctrl in ((ctrl_pos, 1.0), (ctrl_neg, -1.0)):
            if ctrl < 0:
                continue
            matrix[out, ctrl] += sign_out * sign_ctrl * gm


def stamp_voltage_source(
    matrix: np.ndarray, rhs: np.ndarray, pos: int, neg: int, branch: int, value: float
) -> None:
    """Stamp an ideal voltage source with its branch-current row."""
    if pos >= 0:
        matrix[pos, branch] += 1.0
        matrix[branch, pos] += 1.0
    if neg >= 0:
        matrix[neg, branch] -= 1.0
        matrix[branch, neg] -= 1.0
    rhs[branch] += value


def stamp_current(rhs: np.ndarray, pos: int, neg: int, value: float) -> None:
    """Stamp an independent current source (pos -> neg through the source)."""
    if pos >= 0:
        rhs[pos] -= value
    if neg >= 0:
        rhs[neg] += value


def solve_linear(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the MNA system, raising :class:`AnalysisError` when singular."""
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as error:
        raise AnalysisError(f"singular MNA matrix: {error}") from error
