"""Nonlinear DC operating-point solver.

Damped Newton-Raphson on the MNA equations with two classic continuation
safety nets:

* **gmin stepping** — a shunt conductance from every node to ground starts
  large and is relaxed geometrically to zero, taming the near-singular
  Jacobians of high-gain nodes;
* **source stepping** — if gmin stepping fails, supplies are ramped from a
  fraction of their value to 100 %.

The solver returns a :class:`DcSolution` carrying node voltages and a full
:class:`~repro.mos.model.OperatingPoint` per MOS device, which the AC and
noise analyses then stamp directly — the linearisation is shared, never
recomputed differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.analysis.engine import COMPILED, resolve_engine
from repro.analysis.mna import NodeIndex, solve_linear
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError, ReproError
from repro.mos import make_model
from repro.mos.junction import DiffusionGeometry
from repro.mos.model import MosModel, OperatingPoint
from repro.resilience import faults
from repro.resilience.policy import (
    DEFAULT_GMIN_SEQUENCE,
    LEGACY_POLICY,
    ConvergenceReport,
    ramp_policy,
)
from repro.technology.process import MosParams

# Keyed on the (frozen, hashable) params value rather than ``id(params)``:
# an id can be reused after the original object is garbage-collected, which
# would silently hand back a model built for different parameters.  Value
# keys also let cloned circuits (deep-copied params) share one model.
_MODEL_CACHE: Dict[Tuple[MosParams, int], MosModel] = {}


def model_for(mos: Mos) -> MosModel:
    """Shared model instance for a MOS element (cached per params+level)."""
    assert mos.params is not None
    key = (mos.params, mos.model_level)
    model = _MODEL_CACHE.get(key)
    if model is None:
        if telemetry.enabled():
            telemetry.count("model_cache.misses")
        model = make_model(mos.params, level=mos.model_level)
        _MODEL_CACHE[key] = model
    elif telemetry.enabled():
        telemetry.count("model_cache.hits")
    return model


@dataclass
class MosSolution:
    """Solved state of one MOS device.

    ``op`` is in forward convention; ``swapped`` records whether the
    effective drain is the element's source terminal (reverse conduction).
    ``terminal_current`` is the current into the element's drain pin.
    """

    element: Mos
    op: OperatingPoint
    swapped: bool
    terminal_current: float

    @property
    def eff_drain(self) -> str:
        """Net acting as drain in forward convention."""
        return self.element.s if self.swapped else self.element.d

    @property
    def eff_source(self) -> str:
        """Net acting as source in forward convention."""
        return self.element.d if self.swapped else self.element.s


@dataclass
class DcSolution:
    """Result of a DC analysis."""

    voltages: Dict[str, float]
    devices: Dict[str, MosSolution]
    source_currents: Dict[str, float]
    """Branch current of each voltage source, flowing pos -> neg through
    the source (so a supply delivering power has a negative entry)."""
    iterations: int
    gmin: float
    """Residual gmin at convergence (0.0 for a fully relaxed solve)."""

    convergence: Optional[ConvergenceReport] = None
    """Structured escalation-ladder record of the solve (which strategy
    won, per-rung residual norms, any compiled-to-legacy fallback)."""

    def voltage(self, net: str) -> float:
        if net.lower() in ("0", "gnd", "vss", "ground"):
            return 0.0
        return self.voltages[net]

    def source_power(self, name: str) -> float:
        """Power delivered by a voltage source, W (positive = delivering)."""
        if self._source_dc is None:
            raise AnalysisError(
                "DcSolution has no recorded source DC values; "
                "source_power is only available on solutions produced by "
                "solve_dc"
            )
        current = self.source_currents[name]
        return -current * self._source_dc[name]

    def total_supply_power(self) -> float:
        """Total power delivered by all voltage sources, W."""
        return sum(self.source_power(name) for name in self.source_currents)

    # populated by solve_dc
    _source_dc: Optional[Dict[str, float]] = field(default=None, repr=False)


def _device_terminal_state(
    mos: Mos, voltages: np.ndarray, index: NodeIndex
) -> Tuple[float, float, float, float]:
    """Terminal voltages (vd, vg, vs, vb) from the solution vector."""

    def v(net: str) -> float:
        node = index.node(net)
        return 0.0 if node < 0 else float(voltages[node])

    return v(mos.d), v(mos.g), v(mos.s), v(mos.b)


def _evaluate_mos(
    mos: Mos, voltages: np.ndarray, index: NodeIndex
) -> Tuple[float, float, float, float, bool]:
    """Evaluate a MOS at the present iterate.

    Returns ``(i_ds, gm, gds, gmb, swapped)`` where ``i_ds`` is the current
    from the *effective* drain node to the effective source node, and the
    small-signal parameters are in forward convention.
    """
    assert mos.params is not None
    model = model_for(mos)
    sign = mos.params.sign
    vd, vg, vs, vb = _device_terminal_state(mos, voltages, index)
    swapped = sign * (vd - vs) < 0.0
    if swapped:
        vd, vs = vs, vd
    vgs = sign * (vg - vs) - mos.mismatch_vth
    vds = sign * (vd - vs)
    vsb = sign * (vs - vb)
    current, gm, gds, gmb, _region = model.evaluate(mos.w, mos.l, vgs, vds, vsb)
    beta_scale = 1.0 + mos.mismatch_beta
    current *= beta_scale
    gm *= beta_scale
    gds *= beta_scale
    gmb *= beta_scale
    return sign * current, gm, gds, gmb, swapped


def _build_system(
    circuit: Circuit,
    index: NodeIndex,
    voltages: np.ndarray,
    gmin: float,
    source_scale: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Residual vector f(v) and Jacobian J(v) at the current iterate."""
    size = index.size
    jacobian = np.zeros((size, size))
    residual = np.zeros(size)

    def v_at(node: int) -> float:
        return 0.0 if node < 0 else float(voltages[node])

    def add_out(node: int, current: float) -> None:
        if node >= 0:
            residual[node] += current

    def add_jac(row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            jacobian[row, col] += value

    for element in circuit:
        if isinstance(element, Resistor):
            i = index.node(element.a)
            j = index.node(element.b)
            conductance = 1.0 / element.value
            current = conductance * (v_at(i) - v_at(j))
            add_out(i, current)
            add_out(j, -current)
            add_jac(i, i, conductance)
            add_jac(i, j, -conductance)
            add_jac(j, j, conductance)
            add_jac(j, i, -conductance)
        elif isinstance(element, Capacitor):
            continue  # open at DC
        elif isinstance(element, VoltageSource):
            pos = index.node(element.pos)
            neg = index.node(element.neg)
            branch = index.branch(element.name)
            i_branch = float(voltages[branch])
            add_out(pos, i_branch)
            add_out(neg, -i_branch)
            add_jac(pos, branch, 1.0)
            add_jac(neg, branch, -1.0)
            residual[branch] += v_at(pos) - v_at(neg) - element.dc * source_scale
            add_jac(branch, pos, 1.0)
            add_jac(branch, neg, -1.0)
        elif isinstance(element, CurrentSource):
            pos = index.node(element.pos)
            neg = index.node(element.neg)
            add_out(pos, element.dc * source_scale)
            add_out(neg, -element.dc * source_scale)
        elif isinstance(element, Mos):
            i_ds, gm, gds, gmb, swapped = _evaluate_mos(element, voltages, index)
            if swapped:
                drain = index.node(element.s)
                source = index.node(element.d)
            else:
                drain = index.node(element.d)
                source = index.node(element.s)
            gate = index.node(element.g)
            bulk = index.node(element.b)
            add_out(drain, i_ds)
            add_out(source, -i_ds)
            # d(i_ds)/d(v_x) in actual node voltages; the polarity signs
            # cancel as derived in the module docstring of repro.mos.model.
            for row, row_sign in ((drain, 1.0), (source, -1.0)):
                add_jac(row, drain, row_sign * gds)
                add_jac(row, gate, row_sign * gm)
                add_jac(row, source, row_sign * (-gm - gds - gmb))
                add_jac(row, bulk, row_sign * gmb)
        else:  # pragma: no cover - future element types
            raise NotImplementedError(f"DC stamp for {type(element).__name__}")

    # gmin shunts on every node.
    for node in range(index.node_count):
        residual[node] += gmin * float(voltages[node])
        jacobian[node, node] += gmin

    return residual, jacobian


def _newton(
    circuit: Circuit,
    index: NodeIndex,
    start: np.ndarray,
    gmin: float,
    source_scale: float = 1.0,
    max_iterations: int = 200,
    abs_tolerance: float = 1e-10,
    step_limit: float = 0.6,
) -> Tuple[np.ndarray, bool, int, float]:
    """Damped Newton from ``start``.

    Returns ``(solution, converged, iterations, residual_norm)`` where the
    norm is the last max-abs KCL residual evaluated (escalation rungs
    record it in their :class:`~repro.resilience.policy.ConvergenceReport`).
    """
    voltages = start.copy()
    residual_norm = float("inf")
    for iteration in range(1, max_iterations + 1):
        residual, jacobian = _build_system(
            circuit, index, voltages, gmin, source_scale
        )
        residual_norm = float(np.max(np.abs(residual)))
        try:
            if faults.active():
                faults.maybe_raise("solve.linear")
            delta = solve_linear(jacobian, -residual)
        except Exception:
            return voltages, False, iteration, residual_norm
        max_step = float(np.max(np.abs(delta))) if delta.size else 0.0
        if max_step > step_limit:
            delta *= step_limit / max_step
        voltages += delta
        if residual_norm < abs_tolerance and max_step < 1e-9:
            return voltages, True, iteration, residual_norm
        if max_step < 1e-12 and residual_norm < 1e-6:
            # Stalled but electrically negligible residual.
            return voltages, True, iteration, residual_norm
    return voltages, False, max_iterations, residual_norm


def _initial_guess(circuit: Circuit, index: NodeIndex) -> np.ndarray:
    """Start vector: DC-source-pinned nets at their value, others midway."""
    guess = np.zeros(index.size)
    supply = 0.0
    for source in index.sources:
        supply = max(supply, abs(source.dc))
    midpoint = 0.5 * supply
    for net, node in ((net, index.node(net)) for net in index.nets):
        guess[node] = midpoint
    for source in index.sources:
        pos = index.node(source.pos)
        neg = index.node(source.neg)
        if neg < 0 and pos >= 0:
            guess[pos] = source.dc
        elif pos < 0 and neg >= 0:
            guess[neg] = -source.dc
    return guess


#: Kept as a module-level alias: callers historically pinned this ladder.
GMIN_SEQUENCE = DEFAULT_GMIN_SEQUENCE


class _LegacyBackend:
    """Escalation-policy backend over the legacy per-element stamping."""

    def __init__(self, circuit: Circuit, index: NodeIndex):
        self.circuit = circuit
        self.index = index

    @property
    def circuit_name(self) -> str:
        return self.circuit.name

    def initial_guess(self) -> np.ndarray:
        return _initial_guess(self.circuit, self.index)

    def zeros(self) -> np.ndarray:
        return np.zeros(self.index.size)

    def newton(
        self,
        start: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
        max_iterations: int = 200,
    ) -> Tuple[np.ndarray, bool, int, float]:
        return _newton(
            self.circuit,
            self.index,
            start,
            gmin,
            source_scale=source_scale,
            max_iterations=max_iterations,
        )

    def worst_residual_nodes(
        self, voltages: np.ndarray, count: int = 5
    ) -> list:
        residual, _jacobian = _build_system(
            self.circuit, self.index, voltages, gmin=0.0, source_scale=1.0
        )
        return worst_nodes_from_residual(self.index, residual, count)


def worst_nodes_from_residual(
    index: NodeIndex, residual: np.ndarray, count: int = 5
) -> list:
    """The ``count`` nets with the largest KCL residual, worst first."""
    node_residuals = np.abs(residual[: index.node_count])
    if not np.all(np.isfinite(node_residuals)):
        node_residuals = np.where(
            np.isfinite(node_residuals), node_residuals, np.inf
        )
    order = np.argsort(node_residuals)[::-1][:count]
    return [(index.nets[i], float(node_residuals[i])) for i in order]


def solve_dc(
    circuit: Circuit,
    gmin_sequence: Tuple[float, ...] = GMIN_SEQUENCE,
    max_iterations: int = 200,
    engine: Optional[str] = None,
) -> DcSolution:
    """Find the DC operating point of ``circuit``.

    ``engine`` selects the compiled-stamp or legacy implementation (see
    :mod:`repro.analysis.engine`); ``None`` uses the process default.  The
    solve runs an escalation ladder (:mod:`repro.resilience.policy`) and
    attaches its :class:`~repro.resilience.policy.ConvergenceReport` to the
    returned solution; when every strategy fails a
    :class:`ConvergenceError` carrying the same report is raised.  If the
    *compiled* engine fails structurally (anything but non-convergence) the
    solve falls back to the legacy engine and records the hand-over in the
    report.
    """
    if resolve_engine(engine) == COMPILED:
        from repro.analysis.stamps import StampProgram

        try:
            if faults.active():
                faults.maybe_raise("engine.compiled")
            return StampProgram(circuit).solve_dc(gmin_sequence, max_iterations)
        except ConvergenceError:
            # Real non-convergence: the legacy engine runs the same
            # models and would only double the cost of failing again.
            raise
        except (ReproError, NotImplementedError, np.linalg.LinAlgError) as error:
            if telemetry.enabled():
                telemetry.count("engine.fallbacks")
                telemetry.event(
                    "engine.fallback",
                    circuit=circuit.name,
                    error=repr(error),
                )
            solution = _solve_dc_legacy(circuit, gmin_sequence, max_iterations)
            if solution.convergence is not None:
                solution.convergence.engine_fallback = repr(error)
            return solution

    return _solve_dc_legacy(circuit, gmin_sequence, max_iterations)


def _solve_dc_legacy(
    circuit: Circuit,
    gmin_sequence: Tuple[float, ...] = GMIN_SEQUENCE,
    max_iterations: int = 200,
) -> DcSolution:
    """Legacy-engine DC solve via the escalation policy."""
    circuit.validate()
    index = NodeIndex(circuit)
    backend = _LegacyBackend(circuit, index)
    if gmin_sequence is GMIN_SEQUENCE:
        policy = LEGACY_POLICY
    else:
        policy = ramp_policy(tuple(gmin_sequence))
    voltages, report = policy.run(backend, max_iterations=max_iterations)
    return _package_solution(
        circuit,
        index,
        voltages,
        report.iterations,
        report.achieved_gmin,
        report=report,
    )


def _package_solution(
    circuit: Circuit,
    index: NodeIndex,
    voltages: np.ndarray,
    iterations: int,
    gmin: float,
    report: Optional[ConvergenceReport] = None,
) -> DcSolution:
    devices: Dict[str, MosSolution] = {}
    for mos in circuit.mos_devices:
        assert mos.params is not None
        model = model_for(mos)
        sign = mos.params.sign
        vd, vg, vs, vb = _device_terminal_state(mos, voltages, index)
        swapped = sign * (vd - vs) < 0.0
        if swapped:
            vd, vs = vs, vd
        vgs = sign * (vg - vs) - mos.mismatch_vth
        vds = sign * (vd - vs)
        vsb = sign * (vs - vb)
        geometry = mos.geometry
        if geometry is not None and swapped:
            geometry = DiffusionGeometry(
                ad=geometry.as_, pd=geometry.ps, as_=geometry.ad, ps=geometry.pd
            )
        op = model.operating_point(mos.w, mos.l, vgs, vds, vsb, geometry)
        beta_scale = 1.0 + mos.mismatch_beta
        op.id *= beta_scale
        op.gm *= beta_scale
        op.gds *= beta_scale
        op.gmb *= beta_scale
        i_ds = sign * op.id
        terminal_current = -i_ds if swapped else i_ds
        devices[mos.name] = MosSolution(
            element=mos,
            op=op,
            swapped=swapped,
            terminal_current=terminal_current,
        )

    source_currents = {
        source.name: float(voltages[index.branch(source.name)])
        for source in index.sources
    }
    solution = DcSolution(
        voltages=index.voltages_to_dict(voltages),
        devices=devices,
        source_currents=source_currents,
        iterations=iterations,
        gmin=gmin,
        convergence=report,
    )
    solution._source_dc = {source.name: source.dc for source in index.sources}
    return solution
