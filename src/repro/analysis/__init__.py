"""Circuit simulation: DC operating point, AC, noise, performance metrics.

A compact modified-nodal-analysis (MNA) simulator sized for analog cells:

* :mod:`repro.analysis.dcop` — nonlinear DC via damped Newton with gmin
  stepping and source stepping;
* :mod:`repro.analysis.ac` — small-signal frequency sweeps around a DC
  solution;
* :mod:`repro.analysis.noise` — device thermal + flicker noise, referred to
  the input;
* :mod:`repro.analysis.metrics` — OTA-level figures (gain, GBW, phase
  margin, CMRR, slew rate, output resistance, offset, power) matching the
  rows of the paper's Table 1;
* :mod:`repro.analysis.montecarlo` — Pelgrom-mismatch statistical analysis
  (the paper's "statistical analysis to check reliability").

It plays the role the commercial simulator plays in the paper: the
*independent* evaluation of extracted netlists.

Two interchangeable engines back every analysis (see
:mod:`repro.analysis.engine`): the default vectorized compiled-stamp
engine (:mod:`repro.analysis.stamps`) and the legacy per-element
reference implementation, selectable per call via ``engine=`` or
process-wide via :func:`use_engine` / :func:`set_default_engine`.
"""

from repro.analysis.engine import (
    default_engine,
    set_default_engine,
    use_engine,
)
from repro.analysis.stamps import LinearSystem, StampProgram
from repro.analysis.dcop import DcSolution, solve_dc
from repro.analysis.ac import AcSolution, ac_sweep, transfer_function
from repro.analysis.transfer import TransferFunction
from repro.analysis.noise import NoiseAnalysis, NoiseResult
from repro.analysis.metrics import OtaMetrics, measure_ota
from repro.analysis.montecarlo import MonteCarloResult, run_monte_carlo
from repro.analysis.transient import (
    TransientResult,
    measure_slew_rate,
    run_transient,
    step_waveform,
)

__all__ = [
    "AcSolution",
    "DcSolution",
    "LinearSystem",
    "MonteCarloResult",
    "NoiseAnalysis",
    "NoiseResult",
    "OtaMetrics",
    "StampProgram",
    "TransferFunction",
    "TransientResult",
    "ac_sweep",
    "default_engine",
    "measure_ota",
    "measure_slew_rate",
    "run_monte_carlo",
    "run_transient",
    "set_default_engine",
    "solve_dc",
    "step_waveform",
    "transfer_function",
    "use_engine",
]
