"""Warm-start store for DC solves across synthesis rounds.

The synthesis loop re-verifies a structurally identical testbench every
round — only device sizes move, and between consecutive rounds they move
little, so the previous round's converged node voltages are an excellent
Newton seed.  A warm-start *session* (a context manager the synthesizer
opens around one run) caches converged voltages keyed on the circuit's
node/branch layout; :meth:`~repro.analysis.stamps.StampProgram.solve_voltages`
consults the active session and, on a hit, prepends a
:class:`~repro.resilience.policy.WarmStart` rung to the compiled ladder.

Design rules:

* **Correctness over speed** — a seed only changes the Newton start
  point.  If it misleads the solver the warm rung fails and the standard
  ladder runs from its own initial guess, so the converged solution is
  the ladder's fixed point either way.
* **Per-process, per-session** — the store is a stack of plain dicts in
  this interpreter; nothing leaks between synthesis runs (each ``run()``
  opens a fresh session) or across the batch driver's process boundary,
  which keeps parallel Table-1 fingerprints identical to serial ones.
* **Structural keys** — a seed is only reused for a circuit with the
  same ordered node and voltage-source-branch layout, so the voltage
  vector always lines up index-for-index.
* **Bounded memory** — each session holds at most ``limit`` seeds in
  least-recently-used order.  Synthesis runs touch a handful of circuit
  structures so eviction never fires there, but long scripted sessions
  (sweeps over many testbenches inside one scope) stay bounded; each
  eviction counts ``dc.warm_start.evicted``.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import telemetry

Key = Tuple[Tuple[str, ...], Tuple[str, ...]]

#: Seeds a session may hold before evicting its least-recently-used one.
DEFAULT_LIMIT = 64


class _Session:
    """One warm-start scope: an LRU-ordered seed store with a cap."""

    __slots__ = ("seeds", "limit", "evicted")

    def __init__(self, limit: Optional[int]):
        self.seeds: "OrderedDict[Key, np.ndarray]" = OrderedDict()
        self.limit = limit
        self.evicted = 0

    def record(self, key: Key, voltages: np.ndarray) -> None:
        self.seeds[key] = np.array(voltages, dtype=float, copy=True)
        self.seeds.move_to_end(key)
        while self.limit is not None and len(self.seeds) > self.limit:
            self.seeds.popitem(last=False)
            self.evicted += 1
            telemetry.count("dc.warm_start.evicted")

    def lookup(self, key: Key) -> Optional[np.ndarray]:
        seed = self.seeds.get(key)
        if seed is not None:
            self.seeds.move_to_end(key)
        return seed


#: Stack of active sessions (innermost last); solves consult the top only.
_sessions: List[_Session] = []


@contextmanager
def session(limit: Optional[int] = DEFAULT_LIMIT) -> Iterator[None]:
    """Open a warm-start scope; seeds recorded inside die with it.

    ``limit`` caps the number of live seeds (LRU eviction past it);
    ``None`` means unbounded.
    """
    _sessions.append(_Session(limit))
    try:
        yield
    finally:
        _sessions.pop()


def active() -> bool:
    """True when a session is open (solves should consult the store)."""
    return bool(_sessions)


def lookup(key: Key) -> Optional[np.ndarray]:
    """Seed voltages for ``key`` from the innermost session, or None."""
    if not _sessions:
        return None
    return _sessions[-1].lookup(key)


def record(key: Key, voltages: np.ndarray) -> None:
    """Store converged ``voltages`` under ``key`` (no-op outside sessions)."""
    if _sessions:
        _sessions[-1].record(key, voltages)


def evictions() -> int:
    """Seeds evicted from the innermost session so far (0 outside)."""
    if not _sessions:
        return 0
    return _sessions[-1].evicted


def snapshot() -> Dict[Key, np.ndarray]:
    """A deep copy of the innermost session's seeds ({} outside sessions).

    The run journal stores one snapshot per synthesis round so a resumed
    run re-enters each round with exactly the seeds the original run had
    — the warm-start chain, and therefore every Newton iterate, replays
    bit-identically.  Recency order is preserved, so eviction decisions
    replay identically too.
    """
    if not _sessions:
        return {}
    return {
        key: np.array(value, dtype=float, copy=True)
        for key, value in _sessions[-1].seeds.items()
    }


def restore(seeds: Dict[Key, np.ndarray]) -> None:
    """Overwrite the innermost session with ``seeds`` (no-op outside).

    Inverse of :func:`snapshot`, used when resuming a journaled
    synthesis run.
    """
    if _sessions:
        _sessions[-1].seeds.clear()
        for key, value in seeds.items():
            _sessions[-1].seeds[key] = np.array(value, dtype=float, copy=True)
