"""Warm-start store for DC solves across synthesis rounds.

The synthesis loop re-verifies a structurally identical testbench every
round — only device sizes move, and between consecutive rounds they move
little, so the previous round's converged node voltages are an excellent
Newton seed.  A warm-start *session* (a context manager the synthesizer
opens around one run) caches converged voltages keyed on the circuit's
node/branch layout; :meth:`~repro.analysis.stamps.StampProgram.solve_voltages`
consults the active session and, on a hit, prepends a
:class:`~repro.resilience.policy.WarmStart` rung to the compiled ladder.

Design rules:

* **Correctness over speed** — a seed only changes the Newton start
  point.  If it misleads the solver the warm rung fails and the standard
  ladder runs from its own initial guess, so the converged solution is
  the ladder's fixed point either way.
* **Per-process, per-session** — the store is a stack of plain dicts in
  this interpreter; nothing leaks between synthesis runs (each ``run()``
  opens a fresh session) or across the batch driver's process boundary,
  which keeps parallel Table-1 fingerprints identical to serial ones.
* **Structural keys** — a seed is only reused for a circuit with the
  same ordered node and voltage-source-branch layout, so the voltage
  vector always lines up index-for-index.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

Key = Tuple[Tuple[str, ...], Tuple[str, ...]]

#: Stack of active sessions (innermost last); solves consult the top only.
_sessions: List[Dict[Key, np.ndarray]] = []


@contextmanager
def session() -> Iterator[None]:
    """Open a warm-start scope; seeds recorded inside die with it."""
    _sessions.append({})
    try:
        yield
    finally:
        _sessions.pop()


def active() -> bool:
    """True when a session is open (solves should consult the store)."""
    return bool(_sessions)


def lookup(key: Key) -> Optional[np.ndarray]:
    """Seed voltages for ``key`` from the innermost session, or None."""
    if not _sessions:
        return None
    return _sessions[-1].get(key)


def record(key: Key, voltages: np.ndarray) -> None:
    """Store converged ``voltages`` under ``key`` (no-op outside sessions)."""
    if _sessions:
        _sessions[-1][key] = np.array(voltages, dtype=float, copy=True)


def snapshot() -> Dict[Key, np.ndarray]:
    """A deep copy of the innermost session's seeds ({} outside sessions).

    The run journal stores one snapshot per synthesis round so a resumed
    run re-enters each round with exactly the seeds the original run had
    — the warm-start chain, and therefore every Newton iterate, replays
    bit-identically.
    """
    if not _sessions:
        return {}
    return {
        key: np.array(value, dtype=float, copy=True)
        for key, value in _sessions[-1].items()
    }


def restore(seeds: Dict[Key, np.ndarray]) -> None:
    """Overwrite the innermost session with ``seeds`` (no-op outside).

    Inverse of :func:`snapshot`, used when resuming a journaled
    synthesis run.
    """
    if _sessions:
        _sessions[-1].clear()
        for key, value in seeds.items():
            _sessions[-1][key] = np.array(value, dtype=float, copy=True)
