"""Plain-NumPy LU factorization with partial pivoting.

The chord-Newton rung (:meth:`~repro.analysis.stamps.StampProgram.newton_chord`)
factors the Jacobian once and back-substitutes against the frozen
factorization for trailing iterations — so it needs factor and solve as
*separate* operations, which ``np.linalg.solve`` does not expose and
scipy (not a dependency of this project) would otherwise provide.

Two shapes are supported:

* single system — ``lu_factor(a)`` / ``lu_solve(lu, piv, b)`` for the
  scalar Newton in :mod:`repro.analysis.stamps`;
* stacked systems — ``lu_factor_batched(a)`` / ``lu_solve_batched`` over
  a ``(K, n, n)`` ensemble (:mod:`repro.analysis.ensemble`), vectorized
  across members the same way the stacked Newton is.

The batched variants never raise on a singular member: its pivots go to
zero, the division produces non-finite factors under a suppressed
``errstate``, and the resulting non-finite solution rows are exactly
what the ensemble's existing fallback filtering demotes to the scalar
ladder.  The single-system variants raise ``np.linalg.LinAlgError`` like
``np.linalg.solve`` does, so chord and full Newton fail identically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Iterations a factorization is reused before a mandatory refresh.
DEFAULT_MAX_REUSE = 8

#: A chord iteration must shrink the residual by at least this factor;
#: anything slower counts as a stall and triggers a refactorization.
DEFAULT_STALL_RATIO = 0.5


def lu_factor(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factor ``a`` as ``P a = L U`` with partial pivoting.

    Returns ``(lu, piv)`` where ``lu`` packs the unit-lower and upper
    triangles and ``piv`` is the row permutation (``P b == b[piv]``).
    Raises ``np.linalg.LinAlgError`` on an exactly singular matrix.
    """
    lu = np.array(a, dtype=float, copy=True)
    n = lu.shape[0]
    piv = np.arange(n)
    for k in range(n - 1):
        p = k + int(np.argmax(np.abs(lu[k:, k])))
        if p != k:
            lu[[k, p]] = lu[[p, k]]
            piv[[k, p]] = piv[[p, k]]
        pivot = lu[k, k]
        if pivot == 0.0:
            raise np.linalg.LinAlgError("singular matrix in LU factorization")
        lu[k + 1:, k] /= pivot
        lu[k + 1:, k + 1:] -= np.outer(lu[k + 1:, k], lu[k, k + 1:])
    if n and lu[n - 1, n - 1] == 0.0:
        raise np.linalg.LinAlgError("singular matrix in LU factorization")
    return lu, piv


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a x = b`` from a :func:`lu_factor` factorization."""
    x = np.array(b, dtype=float)[piv]
    n = x.shape[0]
    for i in range(1, n):
        x[i] -= lu[i, :i] @ x[:i]
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            x[i] -= lu[i, i + 1:] @ x[i + 1:]
        x[i] /= lu[i, i]
    return x


def lu_factor_batched(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Factor a ``(K, n, n)`` stack, vectorized across members.

    Singular members do not raise: their factors come out non-finite
    (suppressed ``errstate``) and surface as non-finite solve results.
    """
    lu = np.array(a, dtype=float, copy=True)
    K, n, _ = lu.shape
    piv = np.tile(np.arange(n), (K, 1))
    members = np.arange(K)
    with np.errstate(divide="ignore", invalid="ignore"):
        for k in range(n - 1):
            p = k + np.argmax(np.abs(lu[:, k:, k]), axis=1)
            swap = lu[members, p].copy()
            lu[members, p] = lu[members, k]
            lu[members, k] = swap
            swap_piv = piv[members, p].copy()
            piv[members, p] = piv[members, k]
            piv[members, k] = swap_piv
            pivot = lu[:, k, k]
            lu[:, k + 1:, k] /= pivot[:, None]
            lu[:, k + 1:, k + 1:] -= (
                lu[:, k + 1:, k, None] * lu[:, None, k, k + 1:]
            )
    return lu, piv


def lu_solve_batched(
    lu: np.ndarray, piv: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Solve each stacked system against its packed factorization.

    ``b`` is ``(K, n)``; returns ``(K, n)``.  Members whose factors are
    non-finite (singular at factor time) produce non-finite rows.
    """
    x = np.take_along_axis(np.asarray(b, dtype=float), piv, axis=1).copy()
    n = x.shape[1]
    with np.errstate(divide="ignore", invalid="ignore"):
        for i in range(1, n):
            x[:, i] -= np.einsum("kj,kj->k", lu[:, i, :i], x[:, :i])
        for i in range(n - 1, -1, -1):
            if i + 1 < n:
                x[:, i] -= np.einsum(
                    "kj,kj->k", lu[:, i, i + 1:], x[:, i + 1:]
                )
            x[:, i] /= lu[:, i, i]
    return x
