"""Transfer-function post-processing.

Wraps a sampled complex response H(f) and extracts the quantities the
paper's Table 1 reports: DC gain, unity-gain (gain-bandwidth) frequency and
phase margin, plus generic helpers (bandwidth, interpolated gain/phase).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError


@dataclass
class TransferFunction:
    """A complex response sampled on an increasing frequency grid."""

    frequencies: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=float)
        self.values = np.asarray(self.values, dtype=complex)
        if self.frequencies.shape != self.values.shape:
            raise AnalysisError("frequency and value arrays must match")
        if self.frequencies.size < 1:
            raise AnalysisError("transfer function needs at least one sample")
        if np.any(np.diff(self.frequencies) <= 0.0):
            raise AnalysisError("frequencies must be strictly increasing")

    # -- Raw views ----------------------------------------------------------

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.values)

    @property
    def magnitude_db(self) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(np.abs(self.values))

    @property
    def phase_deg(self) -> np.ndarray:
        """Unwrapped phase in degrees."""
        return np.degrees(np.unwrap(np.angle(self.values)))

    # -- Point queries ----------------------------------------------------------

    def _interp(self, array: np.ndarray, frequency: float) -> float:
        if frequency <= self.frequencies[0]:
            return float(array[0])
        if frequency >= self.frequencies[-1]:
            return float(array[-1])
        return float(
            np.interp(
                math.log10(frequency), np.log10(self.frequencies), array
            )
        )

    def gain_db_at(self, frequency: float) -> float:
        return self._interp(self.magnitude_db, frequency)

    def gain_at(self, frequency: float) -> float:
        return 10.0 ** (self.gain_db_at(frequency) / 20.0)

    def phase_deg_at(self, frequency: float) -> float:
        return self._interp(self.phase_deg, frequency)

    # -- Figures of merit -----------------------------------------------------------

    @property
    def dc_gain(self) -> float:
        """Magnitude at the lowest sampled frequency."""
        return float(self.magnitude[0])

    @property
    def dc_gain_db(self) -> float:
        return float(self.magnitude_db[0])

    def unity_gain_frequency(self) -> Optional[float]:
        """First 0 dB crossing (log-interpolated); None if never crossing."""
        gains = self.magnitude_db
        for i in range(len(gains) - 1):
            if gains[i] >= 0.0 > gains[i + 1]:
                # Linear interpolation in (log f, dB).
                f0, f1 = self.frequencies[i], self.frequencies[i + 1]
                g0, g1 = gains[i], gains[i + 1]
                fraction = g0 / (g0 - g1)
                return float(
                    10.0 ** (math.log10(f0) + fraction * math.log10(f1 / f0))
                )
        return None

    def phase_margin(self) -> Optional[float]:
        """Phase margin in degrees at the unity-gain frequency.

        Phase is normalised so a DC-positive-gain response starts at 0
        degrees (a differential inversion is removed).
        """
        unity = self.unity_gain_frequency()
        if unity is None:
            return None
        phase = self.phase_deg
        phase = phase - round(phase[0] / 360.0) * 360.0
        if abs(phase[0]) > 90.0:
            # Inverting configuration: shift the reference by 180 degrees.
            phase = phase - math.copysign(180.0, phase[0])
        phase_at_unity = self._interp(phase, unity)
        return 180.0 + phase_at_unity

    def bandwidth_3db(self) -> Optional[float]:
        """-3 dB frequency relative to the DC gain."""
        target = self.magnitude_db[0] - 3.0102999566398
        gains = self.magnitude_db
        for i in range(len(gains) - 1):
            if gains[i] >= target > gains[i + 1]:
                f0, f1 = self.frequencies[i], self.frequencies[i + 1]
                g0, g1 = gains[i], gains[i + 1]
                fraction = (g0 - target) / (g0 - g1)
                return float(
                    10.0 ** (math.log10(f0) + fraction * math.log10(f1 / f0))
                )
        return None

    def gain_margin_db(self) -> Optional[float]:
        """Gain margin at the -180 degree crossing, dB."""
        phase = self.phase_deg
        phase = phase - round(phase[0] / 360.0) * 360.0
        if abs(phase[0]) > 90.0:
            phase = phase - math.copysign(180.0, phase[0])
        for i in range(len(phase) - 1):
            if phase[i] > -180.0 >= phase[i + 1]:
                fraction = (phase[i] + 180.0) / (phase[i] - phase[i + 1])
                gain = self.magnitude_db[i] + fraction * (
                    self.magnitude_db[i + 1] - self.magnitude_db[i]
                )
                return -float(gain)
        return None
