"""Small-signal AC analysis.

The circuit is linearised at a previously computed DC solution: each MOS
contributes its gm/gmb controlled sources, its output conductance and its
five operating-point capacitances, stamped at the *effective* (orientation-
resolved) terminals recorded by the DC solver.  The complex system
``(G + j 2 pi f C) x = b`` is then solved per frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.analysis.dcop import DcSolution
from repro.analysis.engine import COMPILED, resolve_engine
from repro.analysis.mna import (
    NodeIndex,
    solve_linear,
    stamp_conductance,
    stamp_vccs,
    stamp_voltage_source,
)
from repro.analysis.transfer import TransferFunction
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


def build_ac_matrices(
    circuit: Circuit, dc: DcSolution, index: Optional[NodeIndex] = None
) -> Tuple[np.ndarray, np.ndarray, NodeIndex]:
    """Real conductance and capacitance matrices ``(G, C, index)``.

    Voltage sources are stamped with zero value; drive amplitudes enter via
    the right-hand side built separately (:func:`build_ac_rhs`).
    """
    if index is None:
        index = NodeIndex(circuit)
    size = index.size
    conductance = np.zeros((size, size))
    capacitance = np.zeros((size, size))
    dummy_rhs = np.zeros(size)

    for element in circuit:
        if isinstance(element, Resistor):
            stamp_conductance(
                conductance,
                index.node(element.a),
                index.node(element.b),
                1.0 / element.value,
            )
        elif isinstance(element, Capacitor):
            stamp_conductance(
                capacitance,
                index.node(element.a),
                index.node(element.b),
                element.value,
            )
        elif isinstance(element, VoltageSource):
            stamp_voltage_source(
                conductance,
                dummy_rhs,
                index.node(element.pos),
                index.node(element.neg),
                index.branch(element.name),
                0.0,
            )
        elif isinstance(element, CurrentSource):
            continue  # open in small-signal unless driven (handled in RHS)
        elif isinstance(element, Mos):
            try:
                solution = dc.devices[element.name]
            except KeyError:
                raise AnalysisError(
                    f"DC solution has no device {element.name!r}; "
                    "AC analysis needs a matching operating point"
                ) from None
            op = solution.op
            drain = index.node(solution.eff_drain)
            source = index.node(solution.eff_source)
            gate = index.node(element.g)
            bulk = index.node(element.b)
            stamp_conductance(conductance, drain, source, op.gds)
            stamp_vccs(conductance, drain, source, gate, source, op.gm)
            stamp_vccs(conductance, drain, source, bulk, source, op.gmb)
            stamp_conductance(capacitance, gate, source, op.cgs)
            stamp_conductance(capacitance, gate, drain, op.cgd)
            stamp_conductance(capacitance, gate, bulk, op.cgb)
            stamp_conductance(capacitance, drain, bulk, op.cdb)
            stamp_conductance(capacitance, source, bulk, op.csb)
        else:  # pragma: no cover - future element types
            raise NotImplementedError(f"AC stamp for {type(element).__name__}")

    return conductance, capacitance, index


def build_ac_rhs(
    circuit: Circuit,
    index: NodeIndex,
    overrides: Optional[Dict[str, complex]] = None,
) -> np.ndarray:
    """AC excitation vector from each source's ``ac`` field.

    ``overrides`` maps source names to amplitudes, replacing the stored
    values (used for common-mode vs differential drives without mutating
    the circuit).
    """
    rhs = np.zeros(index.size, dtype=complex)
    overrides = overrides or {}
    for element in circuit:
        if isinstance(element, VoltageSource):
            amplitude = overrides.get(element.name, element.ac)
            rhs[index.branch(element.name)] += amplitude
        elif isinstance(element, CurrentSource):
            amplitude = overrides.get(element.name, element.ac)
            if amplitude:
                pos = index.node(element.pos)
                neg = index.node(element.neg)
                if pos >= 0:
                    rhs[pos] -= amplitude
                if neg >= 0:
                    rhs[neg] += amplitude
    return rhs


@dataclass
class AcSolution:
    """Node voltages over a frequency sweep."""

    frequencies: np.ndarray
    index: NodeIndex
    solutions: np.ndarray
    """Complex array of shape (n_frequencies, system_size)."""

    def voltage(self, net: str) -> np.ndarray:
        """Complex voltage of ``net`` across the sweep."""
        node = self.index.node(net)
        if node < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.solutions[:, node]

    def transfer(self, net: str) -> TransferFunction:
        """Transfer function from the (unit) drive to ``net``."""
        return TransferFunction(self.frequencies.copy(), self.voltage(net).copy())


def ac_sweep(
    circuit: Circuit,
    dc: DcSolution,
    frequencies: Iterable[float],
    overrides: Optional[Dict[str, complex]] = None,
    engine: Optional[str] = None,
) -> AcSolution:
    """Solve the linearised circuit across ``frequencies``.

    The compiled engine stacks ``(G + j 2 pi f C)`` for every frequency
    into one tensor and performs a single broadcasted solve; the legacy
    engine factorizes per frequency.
    """
    freq_array = np.asarray(list(frequencies), dtype=float)
    if freq_array.size == 0:
        raise AnalysisError("ac_sweep needs at least one frequency")
    if np.any(freq_array <= 0.0):
        raise AnalysisError("AC frequencies must be positive")
    if resolve_engine(engine) == COMPILED:
        from repro.analysis.stamps import LinearSystem

        system = LinearSystem(circuit, dc)
        solutions = system.solve_batch(freq_array, system.rhs(overrides))
        return AcSolution(
            frequencies=freq_array,
            index=system.index,
            solutions=solutions[:, :, 0],
        )
    conductance, capacitance, index = build_ac_matrices(circuit, dc)
    rhs = build_ac_rhs(circuit, index, overrides)
    solutions = np.zeros((freq_array.size, index.size), dtype=complex)
    for i, frequency in enumerate(freq_array):
        omega = 2.0 * np.pi * frequency
        matrix = conductance + 1j * omega * capacitance
        solutions[i] = solve_linear(matrix, rhs)
    return AcSolution(frequencies=freq_array, index=index, solutions=solutions)


def ac_sweep_ensemble(
    members: Iterable[Tuple[Circuit, DcSolution]],
    frequencies: Iterable[float],
    overrides: Optional[Dict[str, complex]] = None,
) -> "list[AcSolution]":
    """One stacked ``(K, F, n, n)`` solve over K linearised circuits.

    Every member must linearise to the same system size (same node and
    branch layout — e.g. the same testbench at different process corners
    or operating points); the shared ``overrides`` drive is applied to
    each.  Matches K independent compiled :func:`ac_sweep` calls bit for
    bit, because the stacked solve still runs LAPACK per (member,
    frequency) matrix.
    """
    from repro.analysis.stamps import LinearSystem, solve_stacked_systems

    pairs = list(members)
    if not pairs:
        raise AnalysisError("ac_sweep_ensemble needs at least one member")
    freq_array = np.asarray(list(frequencies), dtype=float)
    if freq_array.size == 0:
        raise AnalysisError("ac_sweep needs at least one frequency")
    if np.any(freq_array <= 0.0):
        raise AnalysisError("AC frequencies must be positive")
    systems = [LinearSystem(circuit, dc) for circuit, dc in pairs]
    size = systems[0].size
    for system in systems[1:]:
        if system.size != size:
            raise AnalysisError(
                "ensemble AC members must share one system size; got "
                f"{system.size} vs {size}"
            )
    rhs_stack = np.stack(
        [system.rhs(overrides) for system in systems]
    )[:, :, None]
    solved = solve_stacked_systems(systems, freq_array, rhs_stack)
    return [
        AcSolution(
            frequencies=freq_array.copy(),
            index=system.index,
            solutions=solved[k, :, :, 0],
        )
        for k, system in enumerate(systems)
    ]


def transfer_function(
    circuit: Circuit,
    dc: DcSolution,
    output_net: str,
    frequencies: Iterable[float],
    overrides: Optional[Dict[str, complex]] = None,
    engine: Optional[str] = None,
) -> TransferFunction:
    """Convenience wrapper: sweep and return the transfer to one net."""
    return ac_sweep(circuit, dc, frequencies, overrides, engine).transfer(
        output_net
    )


def output_impedance(
    circuit: Circuit,
    dc: DcSolution,
    output_net: str,
    frequencies: Iterable[float],
    injection_name: str = "_zout_probe",
    engine: Optional[str] = None,
) -> TransferFunction:
    """Impedance seen into ``output_net`` with all drives silenced.

    A unit AC current is injected into the node; every stored ``ac``
    amplitude is overridden to zero.
    """
    if injection_name in circuit:
        raise AnalysisError(
            f"injection source name {injection_name!r} collides with an "
            "existing element; pass a unique injection_name"
        )
    probe_circuit = circuit.clone()
    probe_circuit.add_isource(injection_name, "0", output_net, dc=0.0, ac=1.0)
    overrides = {
        e.name: 0.0
        for e in probe_circuit
        if isinstance(e, (VoltageSource, CurrentSource))
        and e.name != injection_name
    }
    return transfer_function(
        probe_circuit, dc, output_net, frequencies, overrides, engine
    )


def logspace_frequencies(
    start: float, stop: float, points_per_decade: int = 20
) -> np.ndarray:
    """Logarithmic frequency grid, inclusive of both endpoints."""
    if start <= 0.0 or stop <= start:
        raise AnalysisError("need 0 < start < stop for a log sweep")
    decades = np.log10(stop / start)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(start), np.log10(stop), count)
