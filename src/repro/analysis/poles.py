"""Pole analysis of the linearised circuit.

The natural frequencies of the small-signal network are the generalised
eigenvalues of ``(G, C)``: solutions of ``det(G + s C) = 0``.  They are
computed here by reducing the MNA system to the capacitive subspace and
solving a standard eigenproblem.

This answers the diagnostic question behind the paper's parasitic story:
*which node's* capacitance limits the phase margin.  :func:`dominant_poles`
returns the poles sorted by magnitude, and
:func:`pole_sensitivity` measures how much each pole moves when a chosen
net gets extra capacitance — the folding nodes of the OTA light up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.ac import build_ac_matrices
from repro.analysis.dcop import DcSolution
from repro.analysis.engine import COMPILED, resolve_engine
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass
class PoleSet:
    """Natural frequencies of a linearised circuit."""

    poles: np.ndarray
    """Complex poles in rad/s (negative real parts for stable circuits)."""

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Pole magnitudes as frequencies, Hz, ascending."""
        return np.sort(np.abs(self.poles)) / (2.0 * np.pi)

    def dominant(self) -> float:
        """Lowest pole frequency, Hz."""
        return float(self.frequencies_hz[0])

    def non_dominant(self, count: int = 3) -> List[float]:
        """The next ``count`` pole frequencies after the dominant, Hz."""
        return [float(f) for f in self.frequencies_hz[1:count + 1]]

    def all_stable(self, tolerance: float = 1e-3) -> bool:
        """True when every pole has a non-positive real part."""
        worst = float(np.max(np.real(self.poles)))
        scale = float(np.max(np.abs(self.poles))) or 1.0
        return worst <= tolerance * scale


def compute_poles(
    circuit: Circuit,
    dc: DcSolution,
    drop_below: float = 1.0,
    engine: Optional[str] = None,
) -> PoleSet:
    """Poles of the linearised circuit, in rad/s.

    Solves ``(G + sC) x = 0`` via the pencil reduction: with ``C = U S V*``
    (SVD, rank r), the finite poles are the eigenvalues of
    ``-(U_r^T G^{-1}... `` — implemented as the generalised eigenvalue
    problem on the capacitive subspace.  Poles slower than ``drop_below``
    rad/s (numerical zeros from the rank-deficient C) are discarded.
    """
    if resolve_engine(engine) == COMPILED:
        from repro.analysis.stamps import LinearSystem

        system = LinearSystem(circuit, dc)
        conductance, capacitance = system.conductance, system.capacitance
    else:
        conductance, capacitance, _index = build_ac_matrices(circuit, dc)
    try:
        g_inverse_c = np.linalg.solve(conductance, capacitance)
    except np.linalg.LinAlgError as error:
        raise AnalysisError(f"singular conductance matrix: {error}")
    # det(G + sC) = 0  <=>  det(I + s G^-1 C) = 0  <=>  s = -1/lambda for
    # each non-zero eigenvalue lambda of G^-1 C.
    eigenvalues = np.linalg.eigvals(g_inverse_c)
    finite = eigenvalues[np.abs(eigenvalues) > 1e-30]
    poles = -1.0 / finite
    poles = poles[np.abs(poles) > drop_below]
    if poles.size == 0:
        raise AnalysisError("circuit has no finite poles (no capacitance?)")
    return PoleSet(poles=poles)


def pole_sensitivity(
    circuit: Circuit,
    dc: DcSolution,
    nets: List[str],
    probe_capacitance: float = 50e-15,
    pole_index: int = 1,
) -> Dict[str, float]:
    """Relative shift of a pole per net when probed with extra capacitance.

    Adds ``probe_capacitance`` to each candidate net in turn and reports
    the fractional decrease of the ``pole_index``-th pole frequency
    (index 1 = first non-dominant pole).  The most sensitive net is the
    one whose layout parasitics matter most — the paper's folding node.
    """
    baseline = compute_poles(circuit, dc).frequencies_hz
    if pole_index >= len(baseline):
        raise AnalysisError("pole_index beyond the available pole count")
    reference = baseline[pole_index]

    sensitivities: Dict[str, float] = {}
    for net in nets:
        probed = circuit.clone(circuit.name + "_probe")
        probed.attach_parasitic_cap(net, "0", probe_capacitance)
        shifted = compute_poles(probed, dc).frequencies_hz[pole_index]
        sensitivities[net] = float((reference - shifted) / reference)
    return sensitivities
