"""SPICE netlist importer.

Parses the deck subset the exporter (:mod:`repro.circuit.spice`) emits —
R/C/V/I/M cards plus ``.MODEL`` cards with level-1/3 parameters — so
externally authored netlists (or round-tripped ones) can be simulated and
laid out.  Continuation lines (``+``), comments (``*``) and the usual SPICE
engineering suffixes (``k``, ``meg``, ``u``, ``n``, ``p``, ``f``) are
supported.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError
from repro.technology.process import MosParams

_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)([a-zA-Z]*)$"
)


def parse_value(token: str) -> float:
    """Parse a SPICE number with an optional engineering suffix.

    >>> parse_value("3p")
    3e-12
    >>> parse_value("2.5MEG")
    2500000.0
    """
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise CircuitError(f"cannot parse SPICE number {token!r}")
    mantissa = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return mantissa
    if suffix.startswith("meg"):
        return mantissa * _SUFFIXES["meg"]
    if suffix[0] in _SUFFIXES and suffix[0] != "m":
        return mantissa * _SUFFIXES[suffix[0]]
    if suffix[0] == "m":
        return mantissa * _SUFFIXES["m"]
    raise CircuitError(f"unknown SPICE suffix in {token!r}")


def _logical_lines(text: str) -> List[str]:
    """Join continuation lines, drop comments and blanks."""
    lines: List[str] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not lines:
                raise CircuitError("continuation line with nothing to continue")
            lines[-1] += " " + stripped[1:].strip()
        else:
            lines.append(stripped)
    return lines


def _parse_assignments(tokens: List[str]) -> Dict[str, str]:
    """Parse KEY=VALUE tokens (case-insensitive keys)."""
    values: Dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise CircuitError(f"expected KEY=VALUE, got {token!r}")
        key, _, value = token.partition("=")
        values[key.lower()] = value
    return values


_MODEL_DEFAULTS = dict(
    gamma=0.5, phi=0.7, tox=14e-9, cj=0.0, cjsw=0.0, mj=0.5, mjsw=0.33,
    pb=0.8, cgso=0.0, cgdo=0.0, cgbo=0.0, kf=0.0, af=1.0,
)


def _model_from_card(
    name: str, kind: str, values: Dict[str, str]
) -> Tuple[MosParams, int]:
    polarity = "n" if kind.upper() == "NMOS" else "p"
    level = int(float(values.pop("level", "1")))
    numbers = {key: parse_value(value) for key, value in values.items()}
    vto = numbers.pop("vto", 0.7 if polarity == "n" else -0.7)
    tox = numbers.pop("tox", _MODEL_DEFAULTS["tox"])
    cox = 3.9 * 8.8541878128e-12 / tox
    if "kp" in numbers:
        u0 = numbers.pop("kp") / cox
    else:
        u0 = numbers.pop("u0", 0.045)  # m^2/Vs when given directly
    params = MosParams(
        name=name,
        polarity=polarity,
        vto=vto,
        u0=u0,
        tox=tox,
        gamma=numbers.pop("gamma", _MODEL_DEFAULTS["gamma"]),
        phi=numbers.pop("phi", _MODEL_DEFAULTS["phi"]),
        lambda_l=numbers.pop("lambda", 0.1e-6),
        theta=numbers.pop("theta", 0.0),
        vmax=numbers.pop("vmax", 0.0),
        cj=numbers.pop("cj", _MODEL_DEFAULTS["cj"]),
        cjsw=numbers.pop("cjsw", _MODEL_DEFAULTS["cjsw"]),
        mj=numbers.pop("mj", _MODEL_DEFAULTS["mj"]),
        mjsw=numbers.pop("mjsw", _MODEL_DEFAULTS["mjsw"]),
        pb=numbers.pop("pb", _MODEL_DEFAULTS["pb"]),
        cgso=numbers.pop("cgso", _MODEL_DEFAULTS["cgso"]),
        cgdo=numbers.pop("cgdo", _MODEL_DEFAULTS["cgdo"]),
        cgbo=numbers.pop("cgbo", _MODEL_DEFAULTS["cgbo"]),
        kf=numbers.pop("kf", _MODEL_DEFAULTS["kf"]),
        af=numbers.pop("af", _MODEL_DEFAULTS["af"]),
        rsh_diff=numbers.pop("rsh", 0.0) or 50.0,
    )
    params.validate()
    return params, level


def _parse_source_card(tokens: List[str]) -> Tuple[str, str, float, float]:
    """``pos neg [DC] value [AC value]`` -> (pos, neg, dc, ac)."""
    pos, neg = tokens[0], tokens[1]
    rest = [t for t in tokens[2:]]
    dc = 0.0
    ac = 0.0
    i = 0
    while i < len(rest):
        token = rest[i].upper()
        if token == "DC":
            dc = parse_value(rest[i + 1])
            i += 2
        elif token == "AC":
            ac = parse_value(rest[i + 1])
            i += 2
        else:
            dc = parse_value(rest[i])
            i += 1
    return pos, neg, dc, ac


def from_spice(text: str, name: Optional[str] = None) -> Circuit:
    """Parse a SPICE deck into a :class:`Circuit`.

    The first line of the deck is the title (SPICE convention).
    ``.MODEL`` cards may appear anywhere; device cards referencing a model
    resolve after the full deck is read.
    """
    raw_lines = text.splitlines()
    if not any(line.strip() for line in raw_lines):
        raise CircuitError("empty SPICE deck")
    title = raw_lines[0].strip().lstrip("*").strip()
    lines = _logical_lines("\n".join(raw_lines[1:]))

    models: Dict[str, Tuple[MosParams, int]] = {}
    pending_mos: List[Tuple[str, List[str]]] = []
    circuit = Circuit(name or (title.split()[0] if title else "imported"))

    def element_name(card: str) -> str:
        """Card name without the type letter; full card on collision."""
        candidate = card[1:] or card
        if candidate in circuit:
            return card
        return candidate

    for line in lines:
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        if kind == ".":
            directive = card.lower()
            if directive == ".model":
                model_name = tokens[1]
                model_kind = tokens[2]
                blob = " ".join(tokens[3:]).strip()
                if blob.startswith("(") and blob.endswith(")"):
                    blob = blob[1:-1]
                models[model_name] = _model_from_card(
                    model_name, model_kind, _parse_assignments(blob.split())
                )
            elif directive in (".end", ".ends"):
                break
            else:
                continue  # other directives ignored
        elif kind == "R":
            circuit.add_resistor(
                element_name(card), tokens[1], tokens[2],
                parse_value(tokens[3]),
            )
        elif kind == "C":
            circuit.add_capacitor(
                element_name(card), tokens[1], tokens[2],
                parse_value(tokens[3]),
            )
        elif kind == "V":
            pos, neg, dc, ac = _parse_source_card(tokens[1:])
            circuit.add_vsource(element_name(card), pos, neg, dc=dc, ac=ac)
        elif kind == "I":
            pos, neg, dc, ac = _parse_source_card(tokens[1:])
            circuit.add_isource(element_name(card), pos, neg, dc=dc, ac=ac)
        elif kind == "M":
            pending_mos.append((card, tokens[1:]))
        else:
            raise CircuitError(f"unsupported SPICE card {card!r}")

    for card, tokens in pending_mos:
        device_name = element_name(card)
        d, g, s, b, model_name = tokens[:5]
        if model_name not in models:
            raise CircuitError(
                f"device {card!r} references unknown model "
                f"{model_name!r}"
            )
        params, level = models[model_name]
        values = _parse_assignments(
            [t for t in tokens[5:] if "=" in t]
        )
        width = parse_value(values.get("w", "0"))
        length = parse_value(values.get("l", "0"))
        mos = circuit.add_mos(
            device_name, d=d, g=g, s=s, b=b, params=params,
            w=width, l=length, model_level=level,
        )
        if "ad" in values:
            from repro.mos.junction import DiffusionGeometry

            mos.geometry = DiffusionGeometry(
                ad=parse_value(values.get("ad", "0")),
                pd=parse_value(values.get("pd", "0")),
                as_=parse_value(values.get("as", "0")),
                ps=parse_value(values.get("ps", "0")),
            )
    return circuit
