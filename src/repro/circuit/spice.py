"""SPICE netlist export.

Produces a standard ``.cktsp``-style deck: one card per element plus
``.model`` cards for each distinct MOS parameter set.  Useful for eyeballing
a synthesised circuit or feeding an external simulator.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.technology.process import MosParams


def _model_card(params: MosParams, level: int) -> str:
    kind = "NMOS" if params.polarity == "n" else "PMOS"
    fields = [
        f"LEVEL={level}",
        f"VTO={params.vto:.4g}",
        f"KP={params.kp:.4g}",
        f"GAMMA={params.gamma:.4g}",
        f"PHI={params.phi:.4g}",
        f"TOX={params.tox:.4g}",
        # Non-standard but self-consistent: the length-scaled CLM
        # coefficient (lambda = LAMBDA / L) and level-3 degradation terms.
        f"LAMBDA={params.lambda_l:.4g}",
        f"THETA={params.theta:.4g}",
        f"VMAX={params.vmax:.4g}",
        f"CJ={params.cj:.4g}",
        f"CJSW={params.cjsw:.4g}",
        f"MJ={params.mj:.4g}",
        f"MJSW={params.mjsw:.4g}",
        f"PB={params.pb:.4g}",
        f"CGSO={params.cgso:.4g}",
        f"CGDO={params.cgdo:.4g}",
        f"CGBO={params.cgbo:.4g}",
        f"KF={params.kf:.4g}",
        f"AF={params.af:.4g}",
    ]
    return f".MODEL {params.name} {kind} ({' '.join(fields)})"


def to_spice(circuit: Circuit, title: str | None = None) -> str:
    """Render a circuit as a SPICE deck string."""
    lines: List[str] = [f"* {title or circuit.name}"]
    models: Dict[str, str] = {}
    for element in circuit:
        if isinstance(element, Mos):
            assert element.params is not None
            card = (
                f"M{element.name} {element.d} {element.g} {element.s} "
                f"{element.b} {element.params.name} "
                f"W={element.w:.4g} L={element.l:.4g} M=1"
            )
            if element.geometry is not None:
                geom = element.geometry
                card += (
                    f" AD={geom.ad:.4g} PD={geom.pd:.4g}"
                    f" AS={geom.as_:.4g} PS={geom.ps:.4g}"
                )
            lines.append(card)
            models[element.params.name] = _model_card(
                element.params, element.model_level
            )
        elif isinstance(element, Resistor):
            lines.append(f"R{element.name} {element.a} {element.b} {element.value:.6g}")
        elif isinstance(element, Capacitor):
            lines.append(f"C{element.name} {element.a} {element.b} {element.value:.6g}")
        elif isinstance(element, VoltageSource):
            card = f"V{element.name} {element.pos} {element.neg} DC {element.dc:.6g}"
            if element.ac:
                card += f" AC {element.ac:.6g}"
            lines.append(card)
        elif isinstance(element, CurrentSource):
            card = f"I{element.name} {element.pos} {element.neg} DC {element.dc:.6g}"
            if element.ac:
                card += f" AC {element.ac:.6g}"
            lines.append(card)
        else:  # pragma: no cover - future element types
            raise NotImplementedError(f"no SPICE card for {type(element).__name__}")
    lines.extend(sorted(models.values()))
    lines.append(".END")
    return "\n".join(lines) + "\n"
