"""Circuit elements.

Elements are plain data; all physics lives in :mod:`repro.mos` (device
models) and :mod:`repro.analysis` (stamping).  Every element has a unique
name and an ordered tuple of net names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import CircuitError
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import MosParams


@dataclass
class Element:
    """Base class: a named element attached to nets."""

    name: str

    @property
    def nets(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def validate(self) -> None:
        if not self.name:
            raise CircuitError("element needs a non-empty name")
        for net in self.nets:
            if not net:
                raise CircuitError(f"element {self.name!r} has an empty net name")


@dataclass
class Resistor(Element):
    """Linear resistor between nets ``a`` and ``b``."""

    a: str = "0"
    b: str = "0"
    value: float = 0.0

    @property
    def nets(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def validate(self) -> None:
        super().validate()
        if self.value <= 0.0:
            raise CircuitError(f"resistor {self.name!r} must be positive")


@dataclass
class Capacitor(Element):
    """Linear capacitor between nets ``a`` and ``b``."""

    a: str = "0"
    b: str = "0"
    value: float = 0.0
    parasitic: bool = False
    """Marks capacitors injected by parasitic estimation/extraction."""

    @property
    def nets(self) -> Tuple[str, ...]:
        return (self.a, self.b)

    def validate(self) -> None:
        super().validate()
        if self.value < 0.0:
            raise CircuitError(f"capacitor {self.name!r} must be non-negative")


@dataclass
class VoltageSource(Element):
    """Independent voltage source; ``pos`` is the + terminal.

    ``ac`` is the small-signal amplitude used in AC analysis.
    """

    pos: str = "0"
    neg: str = "0"
    dc: float = 0.0
    ac: float = 0.0

    @property
    def nets(self) -> Tuple[str, ...]:
        return (self.pos, self.neg)


@dataclass
class CurrentSource(Element):
    """Independent current source; positive current flows pos -> neg
    through the source (SPICE convention)."""

    pos: str = "0"
    neg: str = "0"
    dc: float = 0.0
    ac: float = 0.0

    @property
    def nets(self) -> Tuple[str, ...]:
        return (self.pos, self.neg)


@dataclass
class Mos(Element):
    """MOS transistor instance.

    Terminal order follows SPICE: drain, gate, source, bulk.  ``params``
    selects the polarity and model parameters; ``model_level`` picks the
    equation set.  ``geometry`` carries the (layout-accurate, when known)
    source/drain diffusion shape used for junction capacitance; ``nf`` is
    the number of folds chosen by the layout tool.
    """

    d: str = "0"
    g: str = "0"
    s: str = "0"
    b: str = "0"
    params: Optional[MosParams] = None
    w: float = 0.0
    l: float = 0.0
    nf: int = 1
    model_level: int = 1
    geometry: Optional[DiffusionGeometry] = None
    mismatch_vth: float = 0.0
    """Threshold shift applied to this instance (Monte-Carlo mismatch), V."""
    mismatch_beta: float = 0.0
    """Relative current-factor error applied to this instance."""

    @property
    def nets(self) -> Tuple[str, ...]:
        return (self.d, self.g, self.s, self.b)

    @property
    def polarity(self) -> str:
        if self.params is None:
            raise CircuitError(f"mos {self.name!r} has no model parameters")
        return self.params.polarity

    def validate(self) -> None:
        super().validate()
        if self.params is None:
            raise CircuitError(f"mos {self.name!r} has no model parameters")
        if self.w <= 0.0 or self.l <= 0.0:
            raise CircuitError(
                f"mos {self.name!r} has non-positive geometry "
                f"(W={self.w}, L={self.l})"
            )
        if self.nf < 1:
            raise CircuitError(f"mos {self.name!r} has nf < 1")

    def resized(self, w: Optional[float] = None, l: Optional[float] = None) -> "Mos":
        """Copy with new geometry (used by the sizing iterations)."""
        return replace(
            self,
            w=self.w if w is None else w,
            l=self.l if l is None else l,
        )
