"""Circuit representation: nets, elements, netlists, topology generators.

A :class:`~repro.circuit.netlist.Circuit` is a flat container of typed
elements connected by named nets.  The simulator (:mod:`repro.analysis`)
stamps these elements into MNA matrices; the layout generators consume the
same objects to derive device geometry and connectivity.
"""

from repro.circuit.net import GROUND_NAMES, is_ground
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.spice import to_spice
from repro.circuit.parser import from_spice, parse_value

__all__ = [
    "Capacitor",
    "Circuit",
    "CurrentSource",
    "Element",
    "GROUND_NAMES",
    "Mos",
    "Resistor",
    "VoltageSource",
    "from_spice",
    "is_ground",
    "parse_value",
    "to_spice",
]
