"""Net naming conventions.

Nets are plain strings; the names in :data:`GROUND_NAMES` all refer to the
global reference node.
"""

from __future__ import annotations

GROUND_NAMES = frozenset({"0", "gnd", "vss", "ground"})
"""Aliases accepted for the reference node."""


def is_ground(net: str) -> bool:
    """True if ``net`` names the global reference node."""
    return net.lower() in GROUND_NAMES


def canonical(net: str) -> str:
    """Canonical form of a net name ('0' for any ground alias)."""
    if is_ground(net):
        return "0"
    return net
