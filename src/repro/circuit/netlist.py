"""Netlist container.

:class:`Circuit` is a flat, ordered collection of elements with unique
names.  It offers convenience constructors per element type, net queries,
deep cloning (sizing iterations mutate clones, never the original) and a
merge operation for attaching extracted parasitics.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, List, Optional

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Element,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.net import canonical, is_ground
from repro.errors import CircuitError
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import MosParams


class Circuit:
    """A named, flat netlist."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: Dict[str, Element] = {}

    # -- Container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    # -- Element management ------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element; names must be unique within the circuit."""
        element.validate()
        if element.name in self._elements:
            raise CircuitError(
                f"circuit {self.name!r} already has an element "
                f"named {element.name!r}"
            )
        self._elements[element.name] = element
        return element

    def remove(self, name: str) -> Element:
        """Remove and return an element by name."""
        try:
            return self._elements.pop(name)
        except KeyError:
            raise CircuitError(
                f"circuit {self.name!r} has no element {name!r}"
            ) from None

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise CircuitError(
                f"circuit {self.name!r} has no element {name!r}"
            ) from None

    def mos(self, name: str) -> Mos:
        """Look up a MOS element by name, type-checked."""
        element = self.element(name)
        if not isinstance(element, Mos):
            raise CircuitError(f"element {name!r} is not a MOS device")
        return element

    @property
    def elements(self) -> List[Element]:
        return list(self._elements.values())

    @property
    def mos_devices(self) -> List[Mos]:
        return [e for e in self if isinstance(e, Mos)]

    @property
    def capacitors(self) -> List[Capacitor]:
        return [e for e in self if isinstance(e, Capacitor)]

    @property
    def nets(self) -> List[str]:
        """All nets, canonicalised, ground first when present."""
        seen = {}
        for element in self:
            for net in element.nets:
                seen[canonical(net)] = True
        ordered = sorted(seen)
        if "0" in seen:
            ordered.remove("0")
            ordered.insert(0, "0")
        return ordered

    def elements_on_net(self, net: str) -> List[Element]:
        """Every element with a terminal on ``net``."""
        target = canonical(net)
        return [
            element
            for element in self
            if any(canonical(n) == target for n in element.nets)
        ]

    # -- Convenience constructors ---------------------------------------------

    def add_mos(
        self,
        name: str,
        d: str,
        g: str,
        s: str,
        b: str,
        params: MosParams,
        w: float,
        l: float,
        nf: int = 1,
        model_level: int = 1,
        geometry: Optional[DiffusionGeometry] = None,
    ) -> Mos:
        return self.add(
            Mos(
                name=name,
                d=d,
                g=g,
                s=s,
                b=b,
                params=params,
                w=w,
                l=l,
                nf=nf,
                model_level=model_level,
                geometry=geometry,
            )
        )

    def add_resistor(self, name: str, a: str, b: str, value: float) -> Resistor:
        return self.add(Resistor(name=name, a=a, b=b, value=value))

    def add_capacitor(
        self, name: str, a: str, b: str, value: float, parasitic: bool = False
    ) -> Capacitor:
        return self.add(
            Capacitor(name=name, a=a, b=b, value=value, parasitic=parasitic)
        )

    def add_vsource(
        self, name: str, pos: str, neg: str, dc: float = 0.0, ac: float = 0.0
    ) -> VoltageSource:
        return self.add(VoltageSource(name=name, pos=pos, neg=neg, dc=dc, ac=ac))

    def add_isource(
        self, name: str, pos: str, neg: str, dc: float = 0.0, ac: float = 0.0
    ) -> CurrentSource:
        return self.add(CurrentSource(name=name, pos=pos, neg=neg, dc=dc, ac=ac))

    # -- Whole-circuit operations ------------------------------------------------

    def clone(self, name: Optional[str] = None) -> "Circuit":
        """Independent copy; sizing iterations mutate clones.

        Every element type is a flat dataclass of immutable field values
        (strings, numbers, frozen parameter records), so copying each
        element object is enough to fully decouple the clone — far cheaper
        than a recursive deepcopy, which matters to the synthesis loop
        cloning a testbench per measurement.
        """
        duplicate = Circuit(self.name if name is None else name)
        duplicate._elements = {
            key: copy.copy(element)
            for key, element in self._elements.items()
        }
        return duplicate

    def validate(self) -> None:
        """Structural checks: elements valid, some ground reference exists."""
        if not self._elements:
            raise CircuitError(f"circuit {self.name!r} is empty")
        for element in self:
            element.validate()
        if not any(is_ground(net) for e in self for net in e.nets):
            raise CircuitError(
                f"circuit {self.name!r} has no ground reference net"
            )

    def strip_parasitics(self) -> int:
        """Remove every parasitic-marked capacitor; returns the count."""
        names = [c.name for c in self.capacitors if c.parasitic]
        for name in names:
            self.remove(name)
        return len(names)

    def attach_parasitic_cap(self, net_a: str, net_b: str, value: float) -> Capacitor:
        """Add (or grow) a parasitic capacitor between two nets."""
        if value < 0.0:
            raise CircuitError("parasitic capacitance must be non-negative")
        key = f"cpar_{canonical(net_a)}_{canonical(net_b)}"
        if key in self._elements:
            existing = self._elements[key]
            assert isinstance(existing, Capacitor)
            existing.value += value
            return existing
        return self.add_capacitor(key, net_a, net_b, value, parasitic=True)

    def total_parasitic_on_net(self, net: str) -> float:
        """Sum of parasitic capacitance touching ``net``, F."""
        target = canonical(net)
        return sum(
            c.value
            for c in self.capacitors
            if c.parasitic and target in (canonical(c.a), canonical(c.b))
        )

    def summary(self) -> str:
        """One-line content summary, useful in logs."""
        mos = len(self.mos_devices)
        caps = len(self.capacitors)
        return (
            f"{self.name}: {len(self)} elements ({mos} MOS, {caps} C), "
            f"{len(self.nets)} nets"
        )
