"""Resistively loaded differential pair.

A minimal gain stage used by unit/integration tests: its small-signal gain
``gm * R`` and pole are textbook-checkable against the simulator.
"""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.testbench import OtaTestbench
from repro.errors import CircuitError
from repro.technology.process import Technology


def build_diff_pair(
    technology: Technology,
    w: float,
    l: float,
    tail_current: float,
    load_resistance: float,
    vdd: float | None = None,
    vcm: float | None = None,
    cload: float = 0.0,
    model_level: int = 1,
) -> OtaTestbench:
    """NMOS differential pair with resistor loads and an ideal tail sink.

    Output is taken single-ended at M2's drain (``vout``); the circuit is
    deliberately small so analytic expectations are exact.
    """
    if tail_current <= 0.0 or load_resistance <= 0.0:
        raise CircuitError("tail current and load resistance must be positive")
    tech = technology
    if vdd is None:
        vdd = tech.supply_nominal
    if vcm is None:
        vcm = vdd / 2.0

    params = tech.device("n")
    circuit = Circuit("diff_pair")
    circuit.add_vsource("vdd", "vdd!", "0", dc=vdd)
    circuit.add_vsource("vinp", "inp", "0", dc=vcm)
    circuit.add_vsource("vinn", "inn", "0", dc=vcm)
    circuit.add_mos(
        "m1", d="out1", g="inp", s="tail", b="0",
        params=params, w=w, l=l, model_level=model_level,
    )
    circuit.add_mos(
        "m2", d="vout", g="inn", s="tail", b="0",
        params=params, w=w, l=l, model_level=model_level,
    )
    circuit.add_resistor("r1", "vdd!", "out1", load_resistance)
    circuit.add_resistor("r2", "vdd!", "vout", load_resistance)
    circuit.add_isource("itail", "tail", "0", dc=tail_current)
    if cload > 0.0:
        circuit.add_capacitor("cload", "vout", "0", cload)

    return OtaTestbench(
        circuit=circuit,
        source_pos="vinp",
        source_neg="vinn",
        input_neg_net="inn",
        output_net="vout",
        supply_sources=("vdd",),
        slew_devices=(),
    )
