"""Simple current mirror circuit (paper Figure 3's electrical view).

One diode-connected reference device and N output devices with integer
width ratios — the circuit whose *layout* (stacked, dummy-guarded,
current-direction-controlled) the paper shows in Figure 3.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.errors import CircuitError
from repro.technology.process import Technology


def build_current_mirror(
    technology: Technology,
    reference_current: float,
    ratios: Sequence[int],
    unit_width: float,
    length: float,
    polarity: str = "n",
    vdd: float | None = None,
    model_level: int = 1,
) -> Circuit:
    """NMOS (or PMOS) current mirror with output branches ``ratios``.

    Device ``m1`` is the diode reference carrying ``reference_current``;
    devices ``m2..`` have widths ``ratio * unit_width`` and drive resistive
    loads to the supply so every output current is observable at DC.
    Returns the complete testbench circuit.
    """
    if reference_current <= 0.0:
        raise CircuitError("mirror needs a positive reference current")
    if not ratios:
        raise CircuitError("mirror needs at least one output branch")
    if any(r < 1 for r in ratios):
        raise CircuitError("mirror ratios must be positive integers")

    tech = technology
    if vdd is None:
        vdd = tech.supply_nominal
    params = tech.device(polarity)
    circuit = Circuit("current_mirror")
    circuit.add_vsource("vdd", "vdd!", "0", dc=vdd)

    if polarity == "n":
        rail, far_rail = "0", "vdd!"
    else:
        rail, far_rail = "vdd!", "0"

    circuit.add_mos(
        "m1",
        d="gate",
        g="gate",
        s=rail,
        b=rail,
        params=params,
        w=unit_width,
        l=length,
        model_level=model_level,
    )
    # Reference current pulled through the diode device.
    if polarity == "n":
        circuit.add_isource("iref", far_rail, "gate", dc=reference_current)
    else:
        circuit.add_isource("iref", "gate", far_rail, dc=reference_current)

    for i, ratio in enumerate(ratios, start=2):
        out = f"out{i}"
        circuit.add_mos(
            f"m{i}",
            d=out,
            g="gate",
            s=rail,
            b=rail,
            params=params,
            w=ratio * unit_width,
            l=length,
            model_level=model_level,
        )
        # Modest load keeping the output device in saturation.
        load_voltage = vdd / 2.0
        load = load_voltage / (ratio * reference_current)
        circuit.add_resistor(f"rload{i}", far_rail, out, load)

    return circuit
