"""Two-stage Miller-compensated OTA.

A second topology exercising the paper's claim that the hierarchical,
plan-based sizing tool makes "the addition of new topologies" simple.
NMOS input pair M1/M2 with PMOS mirror load M3/M4 and tail M5; common-source
PMOS output M6 with sink M7; Miller capacitor Cc (optionally with a nulling
resistor Rz).

Canonical nets::

    inp, inn   inputs
    tail       input-pair common source
    d1         first-stage mirror (diode) node, drain of M1/M3
    d2         first-stage output, drain of M2/M4, gate of M6
    vout       output
    vbn        tail/sink bias
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict

from repro.circuit.netlist import Circuit
from repro.circuit.testbench import OtaTestbench
from repro.circuit.topologies.folded_cascode import DeviceSize
from repro.errors import CircuitError
from repro.technology.process import Technology

TWO_STAGE_DEVICES = ("m1", "m2", "m3", "m4", "m5", "m6", "m7")

_CONNECTIVITY = {
    # m1 (mirror/diode side) is the inverting input of the composite: its
    # signal reaches d2 non-inverted via the mirror and is then inverted by
    # the m6 output stage.
    "m1": ("d1", "inn", "tail", "0"),
    "m2": ("d2", "inp", "tail", "0"),
    "m3": ("d1", "d1", "vdd!", "vdd!"),
    "m4": ("d2", "d1", "vdd!", "vdd!"),
    "m5": ("tail", "vbn", "0", "0"),
    "m6": ("vout", "d2", "vdd!", "vdd!"),
    "m7": ("vout", "vbn", "0", "0"),
}

_POLARITY = {
    "m1": "n",
    "m2": "n",
    "m3": "p",
    "m4": "p",
    "m5": "n",
    "m6": "p",
    "m7": "n",
}


@dataclass
class TwoStageDesign:
    """Electrical design of the two-stage OTA."""

    technology: Technology
    sizes: Dict[str, DeviceSize]
    vbn: float
    vdd: float
    vcm: float
    cload: float
    cc: float
    """Miller compensation capacitance, F."""
    rz: float = 0.0
    """Optional nulling resistor in series with Cc, ohm (0 = none)."""
    model_level: int = 1
    extra_net_caps: Dict[str, float] = dataclass_field(default_factory=dict)
    coupling_caps: Dict[tuple, float] = dataclass_field(default_factory=dict)

    def validate(self) -> None:
        missing = [name for name in TWO_STAGE_DEVICES if name not in self.sizes]
        if missing:
            raise CircuitError(f"missing device sizes: {missing}")
        if self.cc <= 0.0:
            raise CircuitError("two-stage OTA needs a positive Miller cap")
        if self.rz < 0.0:
            raise CircuitError("nulling resistor cannot be negative")


def build_two_stage(design: TwoStageDesign) -> OtaTestbench:
    """Materialise the two-stage design into a measurable testbench.

    Input polarity: the mirror sits on M1's side, so M1's gate path is
    non-inverting into d2 and the M6 stage inverts — M1's gate is the
    inverting input (wired to ``inn``), M2's gate the non-inverting one
    (``inp``).
    """
    design.validate()
    tech = design.technology
    circuit = Circuit("two_stage_ota")

    for name in TWO_STAGE_DEVICES:
        drain, gate, source, bulk = _CONNECTIVITY[name]
        size = design.sizes[name]
        circuit.add_mos(
            name,
            d=drain,
            g=gate,
            s=source,
            b=bulk,
            params=tech.device(_POLARITY[name]),
            w=size.w,
            l=size.l,
            nf=size.nf,
            model_level=design.model_level,
            geometry=size.geometry,
        )

    circuit.add_vsource("vdd", "vdd!", "0", dc=design.vdd)
    circuit.add_vsource("vinp", "inp", "0", dc=design.vcm)
    circuit.add_vsource("vinn", "inn", "0", dc=design.vcm)
    circuit.add_vsource("src_vbn", "vbn", "0", dc=design.vbn)
    circuit.add_capacitor("cload", "vout", "0", design.cload)

    if design.rz > 0.0:
        circuit.add_resistor("rz", "d2", "ccx", design.rz)
        circuit.add_capacitor("cc", "ccx", "vout", design.cc)
    else:
        circuit.add_capacitor("cc", "d2", "vout", design.cc)

    for net, value in design.extra_net_caps.items():
        if value > 0.0:
            circuit.attach_parasitic_cap(net, "0", value)
    for (net_a, net_b), value in design.coupling_caps.items():
        if value > 0.0:
            circuit.attach_parasitic_cap(net_a, net_b, value)

    return OtaTestbench(
        circuit=circuit,
        source_pos="vinp",
        source_neg="vinn",
        input_neg_net="inn",
        output_net="vout",
        supply_sources=("vdd",),
        slew_devices=("m5",),
    )
