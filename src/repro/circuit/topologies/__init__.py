"""Schematic generators for the topologies used in the paper and tests.

Each builder returns a ready-to-measure
:class:`~repro.circuit.testbench.OtaTestbench` (or a plain circuit for the
sub-blocks).  Device naming follows the paper's Figure 4 where applicable.
"""

from repro.circuit.topologies.folded_cascode import (
    FOLDED_CASCODE_DEVICES,
    DeviceSize,
    FoldedCascodeDesign,
    build_folded_cascode,
)
from repro.circuit.topologies.two_stage import TwoStageDesign, build_two_stage
from repro.circuit.topologies.current_mirror import build_current_mirror
from repro.circuit.topologies.diff_pair import build_diff_pair

__all__ = [
    "DeviceSize",
    "FOLDED_CASCODE_DEVICES",
    "FoldedCascodeDesign",
    "TwoStageDesign",
    "build_current_mirror",
    "build_diff_pair",
    "build_folded_cascode",
    "build_two_stage",
]
