"""Folded-cascode OTA (paper Figure 4).

PMOS input pair MP1/MP2 with tail source MP5, folded into NMOS cascodes
MN1C/MN2C over current sinks MN5/MN6, loaded by the cascoded PMOS current
mirror MP3/MP4 with cascodes MP3C/MP4C.  Net and device names follow the
paper so the layout generator and the sizing plan can speak the same
vocabulary.

Canonical nets::

    inp, inn     differential inputs
    tail         common source of the input pair
    fold1, fold2 folding nodes (drains of MP1/MP2)
    mir          mirror gate node (drain of MP3C and MN1C)
    x3, x4       sources of the PMOS cascodes
    vout         single-ended output
    vp1, vbn, vc1, vc3   bias voltages
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Optional

from repro.circuit.netlist import Circuit
from repro.circuit.testbench import OtaTestbench
from repro.errors import CircuitError
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology

FOLDED_CASCODE_DEVICES = (
    "mp1",
    "mp2",
    "mp5",
    "mn5",
    "mn6",
    "mn1c",
    "mn2c",
    "mp3",
    "mp4",
    "mp3c",
    "mp4c",
)
"""Canonical device names of the topology (paper Figure 4)."""

#: Device name -> (drain, gate, source, bulk) net mapping.
_CONNECTIVITY = {
    "mp5": ("tail", "vp1", "vdd!", "vdd!"),
    "mp1": ("fold1", "inp", "tail", "vdd!"),
    "mp2": ("fold2", "inn", "tail", "vdd!"),
    "mn5": ("fold1", "vbn", "0", "0"),
    "mn6": ("fold2", "vbn", "0", "0"),
    "mn1c": ("mir", "vc1", "fold1", "0"),
    "mn2c": ("vout", "vc1", "fold2", "0"),
    "mp3": ("x3", "mir", "vdd!", "vdd!"),
    "mp3c": ("mir", "vc3", "x3", "vdd!"),
    "mp4": ("x4", "mir", "vdd!", "vdd!"),
    "mp4c": ("vout", "vc3", "x4", "vdd!"),
}

#: Nets whose total capacitance limits the non-dominant pole(s); the layout
#: tool minimises drain capacitance here by choosing even folds with
#: internal drains (paper section 3, "Parasitic constraints").
CRITICAL_NETS = ("fold1", "fold2", "vout", "mir")


@dataclass
class DeviceSize:
    """Geometry of one device as decided by sizing/layout."""

    w: float
    l: float
    nf: int = 1
    geometry: Optional[DiffusionGeometry] = None

    def __post_init__(self) -> None:
        if self.w <= 0.0 or self.l <= 0.0:
            raise CircuitError("device sizes must be positive")
        if self.nf < 1:
            raise CircuitError("fold count must be >= 1")


@dataclass
class FoldedCascodeDesign:
    """Complete electrical design of the folded-cascode OTA.

    ``sizes`` maps every canonical device name to its geometry; ``biases``
    provides the four bias voltages.  The builder adds the supply, input
    sources at the common mode and the load capacitor.
    """

    technology: Technology
    sizes: Dict[str, DeviceSize]
    biases: Dict[str, float]
    vdd: float
    vcm: float
    cload: float
    model_level: int = 1
    extra_net_caps: Dict[str, float] = dataclass_field(default_factory=dict)
    """Parasitic (routing/well) capacitance to ground per net, F."""
    coupling_caps: Dict[tuple, float] = dataclass_field(default_factory=dict)
    """Parasitic coupling capacitance between net pairs, F."""

    def validate(self) -> None:
        missing = [name for name in FOLDED_CASCODE_DEVICES if name not in self.sizes]
        if missing:
            raise CircuitError(f"missing device sizes: {missing}")
        for bias in ("vp1", "vbn", "vc1", "vc3"):
            if bias not in self.biases:
                raise CircuitError(f"missing bias voltage {bias!r}")
        if self.cload < 0.0:
            raise CircuitError("load capacitance must be non-negative")

    def device_polarity(self, name: str) -> str:
        return "p" if name.startswith("mp") else "n"


def build_folded_cascode(design: FoldedCascodeDesign) -> OtaTestbench:
    """Materialise the design into a measurable testbench circuit."""
    design.validate()
    tech = design.technology
    circuit = Circuit("folded_cascode_ota")

    for name in FOLDED_CASCODE_DEVICES:
        drain, gate, source, bulk = _CONNECTIVITY[name]
        size = design.sizes[name]
        circuit.add_mos(
            name,
            d=drain,
            g=gate,
            s=source,
            b=bulk,
            params=tech.device(design.device_polarity(name)),
            w=size.w,
            l=size.l,
            nf=size.nf,
            model_level=design.model_level,
            geometry=size.geometry,
        )

    circuit.add_vsource("vdd", "vdd!", "0", dc=design.vdd)
    circuit.add_vsource("vinp", "inp", "0", dc=design.vcm)
    circuit.add_vsource("vinn", "inn", "0", dc=design.vcm)
    for bias_name in ("vp1", "vbn", "vc1", "vc3"):
        circuit.add_vsource(
            f"src_{bias_name}", bias_name, "0", dc=design.biases[bias_name]
        )
    if design.cload > 0.0:
        circuit.add_capacitor("cload", "vout", "0", design.cload)

    for net, value in design.extra_net_caps.items():
        if value > 0.0:
            circuit.attach_parasitic_cap(net, "0", value)
    for (net_a, net_b), value in design.coupling_caps.items():
        if value > 0.0:
            circuit.attach_parasitic_cap(net_a, net_b, value)

    return OtaTestbench(
        circuit=circuit,
        source_pos="vinp",
        source_neg="vinn",
        input_neg_net="inn",
        output_net="vout",
        supply_sources=("vdd",),
        slew_devices=("mp5",),
    )
