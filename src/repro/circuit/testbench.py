"""Testbench description shared by topology builders and measurements.

Lives in the circuit package (not analysis) so that topology generators can
produce ready-to-measure benches without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit


@dataclass
class OtaTestbench:
    """An OTA wired for measurement.

    The circuit must contain voltage sources named ``source_pos`` and
    ``source_neg`` driving the two inputs at the common-mode level, a load
    at ``output_net`` and supply sources listed in ``supply_sources``.
    ``slew_devices`` names the transistors whose bias currents bound the
    large-signal output current (the tail source for a folded cascode).
    """

    circuit: Circuit
    source_pos: str = "vinp"
    source_neg: str = "vinn"
    input_neg_net: str = "inn"
    output_net: str = "vout"
    supply_sources: Tuple[str, ...] = ("vdd",)
    slew_devices: Tuple[str, ...] = ()

    def common_mode_voltage(self) -> float:
        source = self.circuit.element(self.source_pos)
        assert isinstance(source, VoltageSource)
        return source.dc
