"""Interconnect layer electrical data.

Each routing layer carries the data the parasitic estimator and the
reliability checker need: capacitance to substrate (area + fringe), lateral
coupling to a parallel neighbour, sheet resistance and the electromigration
current-density limit.

Units are SI: F/m^2 for area capacitance, F/m for fringe and coupling
capacitance, ohm/square for sheet resistance, A/m for the electromigration
limit (maximum DC current per metre of wire width).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError


@dataclass(frozen=True)
class MetalLayer:
    """Electrical description of one routing layer."""

    name: str
    area_cap: float
    """Capacitance to substrate per area, F/m^2."""
    fringe_cap: float
    """Fringe capacitance per edge length, F/m."""
    coupling_cap: float
    """Lateral coupling per length to a parallel wire at minimum spacing, F/m."""
    min_spacing: float
    """Minimum same-layer spacing, m (coupling scales with spacing/actual)."""
    sheet_resistance: float
    """Ohm per square."""
    max_current_density: float
    """Electromigration limit, A per metre of wire width."""

    def validate(self) -> None:
        if not self.name:
            raise TechnologyError("metal layer needs a name")
        for attr in (
            "area_cap",
            "fringe_cap",
            "coupling_cap",
            "min_spacing",
            "sheet_resistance",
            "max_current_density",
        ):
            if getattr(self, attr) <= 0.0:
                raise TechnologyError(
                    f"metal layer {self.name!r}: {attr} must be positive"
                )

    def wire_capacitance(self, length: float, width: float) -> float:
        """Ground capacitance of a straight wire segment, F.

        Area term plus fringe on both long edges.  Short wires are dominated
        by the fringe term, matching the simple geometric estimators the
        paper relies on.
        """
        if length < 0.0 or width < 0.0:
            raise ValueError("wire dimensions must be non-negative")
        return self.area_cap * length * width + 2.0 * self.fringe_cap * length

    def coupling_capacitance(self, parallel_length: float, spacing: float) -> float:
        """Coupling to a parallel neighbour over ``parallel_length``, F.

        The lateral capacitance is inversely proportional to the spacing,
        normalised so that minimum spacing yields ``coupling_cap`` per metre.
        """
        if parallel_length <= 0.0:
            return 0.0
        if spacing <= 0.0:
            raise ValueError("coupling spacing must be positive")
        return self.coupling_cap * parallel_length * (self.min_spacing / spacing)

    def wire_resistance(self, length: float, width: float) -> float:
        """Resistance of a straight wire segment, ohm."""
        if width <= 0.0:
            raise ValueError("wire width must be positive")
        return self.sheet_resistance * length / width

    def min_width_for_current(self, current: float, min_width: float) -> float:
        """Width needed to carry ``current`` amperes without electromigration.

        Never narrower than ``min_width`` (the design-rule minimum).
        """
        required = abs(current) / self.max_current_density
        return max(min_width, required)
