"""Generic technology presets.

The paper sizes its OTA in a 0.6 um process; :func:`generic_060` is a
self-consistent synthetic equivalent with parameter values typical of
published 0.6 um CMOS processes.  The 0.8 um and 0.35 um presets support the
"technology evaluation interface" of section 4 (choosing the most suitable
technology) and exercise technology independence of the layout generators.
"""

from __future__ import annotations

from repro.technology.metals import MetalLayer
from repro.technology.process import ContactRule, MosParams, Technology, WellParams
from repro.technology.rules import scalable_rules
from repro.units import NM, UM


def _metal_stack(feature_size: float) -> dict:
    """Two-layer metal stack with capacitances scaled from the feature size.

    Finer processes sit closer to the substrate per layer but use narrower
    minimum widths; the values below bracket typical published data
    (0.02-0.04 fF/um^2 area, 0.03-0.06 fF/um fringe).
    """
    scale = feature_size / (0.6 * UM)
    metal1 = MetalLayer(
        name="metal1",
        area_cap=0.035e-3 / scale**0.25,      # F/m^2  (0.035 fF/um^2 at 0.6 um)
        fringe_cap=0.046e-9,                  # F/m    (0.046 fF/um)
        coupling_cap=0.085e-9,                # F/m at minimum spacing
        min_spacing=3.0 * feature_size / 2.0 / 2.0 * 2.0,  # = 1.5*feature
        sheet_resistance=0.07,
        max_current_density=1.0e3,            # 1 mA per um of width
    )
    metal2 = MetalLayer(
        name="metal2",
        area_cap=0.020e-3 / scale**0.25,
        fringe_cap=0.040e-9,
        coupling_cap=0.085e-9,
        min_spacing=metal1.min_spacing,
        sheet_resistance=0.05,
        max_current_density=1.0e3,
    )
    return {"metal1": metal1, "metal2": metal2}


def _poly_layer(feature_size: float) -> MetalLayer:
    return MetalLayer(
        name="poly",
        area_cap=0.09e-3,
        fringe_cap=0.045e-9,
        coupling_cap=0.050e-9,
        min_spacing=1.5 * feature_size,
        sheet_resistance=25.0,
        max_current_density=0.3e3,
    )


def generic_060() -> Technology:
    """Synthetic generic 0.6 um CMOS process (the paper's target node)."""
    feature = 0.6 * UM
    nmos = MosParams(
        name="nch",
        polarity="n",
        vto=0.75,
        u0=460e-4,                 # 460 cm^2/Vs
        tox=14.0 * NM,
        gamma=0.80,
        phi=0.70,
        lambda_l=0.10 * UM,        # lambda = 0.167/V at L=0.6um
        theta=0.18,
        vmax=1.6e5,
        cj=0.80e-3,                # 0.80 fF/um^2
        cjsw=0.32e-9,              # 0.32 fF/um
        mj=0.44,
        mjsw=0.26,
        pb=0.90,
        cgso=0.30e-9,
        cgdo=0.30e-9,
        cgbo=0.15e-9,
        kf=2.0e-26,
        af=1.0,
        rsh_diff=75.0,
        avt=11e-9,
        abeta=0.018e-6,
    )
    pmos = MosParams(
        name="pch",
        polarity="p",
        vto=-0.85,
        u0=160e-4,
        tox=14.0 * NM,
        gamma=0.55,
        phi=0.70,
        lambda_l=0.12 * UM,
        theta=0.14,
        vmax=1.0e5,
        cj=1.00e-3,
        cjsw=0.42e-9,
        mj=0.46,
        mjsw=0.28,
        pb=0.92,
        cgso=0.30e-9,
        cgdo=0.30e-9,
        cgbo=0.15e-9,
        kf=0.8e-26,
        af=1.0,
        rsh_diff=120.0,
        avt=13e-9,
        abeta=0.022e-6,
    )
    tech = Technology(
        name="generic-0.6um",
        feature_size=feature,
        nmos=nmos,
        pmos=pmos,
        rules=scalable_rules(feature),
        metals=_metal_stack(feature),
        poly=_poly_layer(feature),
        contact=ContactRule(max_current=0.6e-3, resistance=6.0),
        via=ContactRule(max_current=0.8e-3, resistance=3.0),
        well=WellParams(cj_area=0.10e-3, cj_perimeter=0.55e-9, pb=0.75, mj=0.45),
        supply_nominal=3.3,
    )
    tech.validate()
    return tech


def generic_080() -> Technology:
    """Synthetic generic 0.8 um CMOS process."""
    feature = 0.8 * UM
    nmos = MosParams(
        name="nch",
        polarity="n",
        vto=0.80,
        u0=500e-4,
        tox=17.0 * NM,
        gamma=0.85,
        phi=0.72,
        lambda_l=0.11 * UM,
        theta=0.15,
        vmax=1.7e5,
        cj=0.38e-3,
        cjsw=0.30e-9,
        mj=0.42,
        mjsw=0.24,
        pb=0.88,
        cgso=0.35e-9,
        cgdo=0.35e-9,
        cgbo=0.18e-9,
        kf=3.0e-26,
        af=1.0,
        rsh_diff=60.0,
        avt=14e-9,
        abeta=0.022e-6,
    )
    pmos = MosParams(
        name="pch",
        polarity="p",
        vto=-0.90,
        u0=175e-4,
        tox=17.0 * NM,
        gamma=0.60,
        phi=0.72,
        lambda_l=0.13 * UM,
        theta=0.12,
        vmax=1.0e5,
        cj=0.50e-3,
        cjsw=0.35e-9,
        mj=0.44,
        mjsw=0.26,
        pb=0.90,
        cgso=0.35e-9,
        cgdo=0.35e-9,
        cgbo=0.18e-9,
        kf=1.2e-26,
        af=1.0,
        rsh_diff=100.0,
        avt=17e-9,
        abeta=0.028e-6,
    )
    tech = Technology(
        name="generic-0.8um",
        feature_size=feature,
        nmos=nmos,
        pmos=pmos,
        rules=scalable_rules(feature),
        metals=_metal_stack(feature),
        poly=_poly_layer(feature),
        contact=ContactRule(max_current=0.8e-3, resistance=5.0),
        via=ContactRule(max_current=1.0e-3, resistance=2.5),
        well=WellParams(cj_area=0.09e-3, cj_perimeter=0.50e-9, pb=0.75, mj=0.45),
        supply_nominal=5.0,
    )
    tech.validate()
    return tech


def generic_035() -> Technology:
    """Synthetic generic 0.35 um CMOS process."""
    feature = 0.35 * UM
    nmos = MosParams(
        name="nch",
        polarity="n",
        vto=0.55,
        u0=430e-4,
        tox=7.5 * NM,
        gamma=0.60,
        phi=0.84,
        lambda_l=0.080 * UM,
        theta=0.25,
        vmax=1.5e5,
        cj=0.90e-3,
        cjsw=0.28e-9,
        mj=0.36,
        mjsw=0.22,
        pb=0.70,
        cgso=0.21e-9,
        cgdo=0.21e-9,
        cgbo=0.11e-9,
        kf=1.4e-26,
        af=1.0,
        rsh_diff=80.0,
        avt=9e-9,
        abeta=0.015e-6,
    )
    pmos = MosParams(
        name="pch",
        polarity="p",
        vto=-0.65,
        u0=150e-4,
        tox=7.5 * NM,
        gamma=0.45,
        phi=0.84,
        lambda_l=0.095 * UM,
        theta=0.20,
        vmax=0.9e5,
        cj=1.10e-3,
        cjsw=0.32e-9,
        mj=0.38,
        mjsw=0.24,
        pb=0.72,
        cgso=0.21e-9,
        cgdo=0.21e-9,
        cgbo=0.11e-9,
        kf=0.5e-26,
        af=1.0,
        rsh_diff=130.0,
        avt=8e-9,
        abeta=0.013e-6,
    )
    tech = Technology(
        name="generic-0.35um",
        feature_size=feature,
        nmos=nmos,
        pmos=pmos,
        rules=scalable_rules(feature),
        metals=_metal_stack(feature),
        poly=_poly_layer(feature),
        contact=ContactRule(max_current=0.5e-3, resistance=8.0),
        via=ContactRule(max_current=0.7e-3, resistance=4.0),
        well=WellParams(cj_area=0.12e-3, cj_perimeter=0.60e-9, pb=0.70, mj=0.42),
        supply_nominal=3.3,
    )
    tech.validate()
    return tech
