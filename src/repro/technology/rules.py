"""Symbolic design rules resolved to metric values.

The layout generators are technology independent: they only ever consult a
:class:`DesignRules` instance, never hard-coded dimensions.  The presets
derive every rule from the process ``feature_size`` (the minimum drawn gate
length), following classic lambda-style scalable rules where
``lambda = feature_size / 2``.

All values are metres.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import TechnologyError


@dataclass(frozen=True)
class DesignRules:
    """Minimum widths, spacings and enclosures used by the generators."""

    grid: float
    """Manufacturing grid; every coordinate snaps to a multiple of this."""

    # Active / diffusion ----------------------------------------------------
    active_min_width: float
    active_spacing: float
    active_well_enclosure: float
    """N-well (or substrate guard) enclosure of active."""

    # Poly -------------------------------------------------------------------
    poly_min_width: float
    """Minimum drawn transistor length."""
    poly_spacing: float
    poly_endcap: float
    """Poly extension past active (gate end cap)."""
    poly_active_spacing: float
    """Field-poly to unrelated active spacing."""

    # Contacts ---------------------------------------------------------------
    contact_size: float
    contact_spacing: float
    contact_poly_spacing: float
    """Spacing between a diffusion contact and the gate poly edge."""
    contact_active_enclosure: float
    contact_metal_enclosure: float

    # Metal 1 ----------------------------------------------------------------
    metal1_min_width: float
    metal1_spacing: float

    # Via 1 / Metal 2 ---------------------------------------------------------
    via_size: float
    via_spacing: float
    via_metal_enclosure: float
    metal2_min_width: float
    metal2_spacing: float

    # Wells -------------------------------------------------------------------
    well_spacing: float
    well_contact_pitch: float
    """Maximum distance between substrate/well taps."""

    def validate(self) -> None:
        """Raise :class:`TechnologyError` if any rule is non-positive."""
        for field in fields(self):
            value = getattr(self, field.name)
            if value <= 0.0:
                raise TechnologyError(
                    f"design rule {field.name!r} must be positive, got {value}"
                )
        if self.grid > self.poly_min_width:
            raise TechnologyError(
                "manufacturing grid is coarser than the minimum poly width"
            )

    def snap(self, value: float) -> float:
        """Snap ``value`` to the nearest manufacturing-grid point."""
        steps = round(value / self.grid)
        return steps * self.grid

    def snap_up(self, value: float) -> float:
        """Snap ``value`` to the next grid point at or above it."""
        steps = value / self.grid
        rounded = round(steps)
        # Tolerate float fuzz: treat values within 1e-6 grid of a grid point
        # as already on the grid.
        if abs(steps - rounded) < 1e-6:
            return rounded * self.grid
        import math

        return math.ceil(steps) * self.grid

    # Derived dimensions used by the motif generator -------------------------

    @property
    def contacted_diffusion_width(self) -> float:
        """Width of a contacted source/drain strip between two gates."""
        return 2.0 * self.contact_poly_spacing + self.contact_size

    @property
    def end_diffusion_width(self) -> float:
        """Width of a contacted source/drain strip at the end of a stack.

        Drawn at the full contacted width (not the bare contact-enclosure
        minimum): the margin keeps neighbouring terminal metal columns at
        a legal metal-1 pitch even at minimum gate length.
        """
        return self.contacted_diffusion_width

    @property
    def gate_pitch(self) -> float:
        """Centre-to-centre gate pitch for a minimum-length folded stack.

        The space between neighbouring gates must hold one contacted
        diffusion strip.
        """
        return self.poly_min_width + self.contacted_diffusion_width


def scalable_rules(feature_size: float, grid: float | None = None) -> DesignRules:
    """Build lambda-style rules from the minimum gate length.

    ``lambda = feature_size / 2``; the multipliers follow the classic MOSIS
    scalable CMOS rule set, slightly adapted for analog layout (wider default
    metal to carry analog bias currents).
    """
    lam = feature_size / 2.0
    if grid is None:
        grid = lam / 6.0
    rules = DesignRules(
        grid=grid,
        active_min_width=3.0 * lam,
        active_spacing=3.0 * lam,
        active_well_enclosure=5.0 * lam,
        poly_min_width=2.0 * lam,
        poly_spacing=3.0 * lam,
        poly_endcap=2.0 * lam,
        poly_active_spacing=1.0 * lam,
        contact_size=2.0 * lam,
        contact_spacing=2.0 * lam,
        contact_poly_spacing=1.5 * lam,
        contact_active_enclosure=1.0 * lam,
        contact_metal_enclosure=1.0 * lam,
        metal1_min_width=3.0 * lam,
        metal1_spacing=3.0 * lam,
        via_size=2.0 * lam,
        via_spacing=3.0 * lam,
        via_metal_enclosure=1.0 * lam,
        metal2_min_width=3.0 * lam,
        metal2_spacing=3.0 * lam,
        well_spacing=6.0 * lam,
        well_contact_pitch=100.0 * lam,
    )
    rules.validate()
    return rules
