"""Technology description: process parameters, design rules, metal stack.

A :class:`~repro.technology.process.Technology` bundles everything the rest
of the library needs to know about a fabrication process:

* MOS model parameters for the NMOS and PMOS devices (`MosParams`),
* symbolic design rules resolved to metric values (`DesignRules`),
* the interconnect stack with capacitance, resistance and electromigration
  data per layer (`MetalLayer`, `ContactRule`),
* well/junction data used for floating-well parasitics.

Presets for generic 0.8 um, 0.6 um and 0.35 um processes live in
:mod:`repro.technology.presets`; the paper's experiments use the 0.6 um one.
"""

from repro.technology.process import (
    ContactRule,
    MosParams,
    Technology,
    WellParams,
)
from repro.technology.metals import MetalLayer
from repro.technology.rules import DesignRules
from repro.technology.presets import generic_035, generic_060, generic_080
from repro.technology.evaluation import TechnologyEvaluator, TechnologyReport

__all__ = [
    "ContactRule",
    "DesignRules",
    "MetalLayer",
    "MosParams",
    "Technology",
    "TechnologyEvaluator",
    "TechnologyReport",
    "WellParams",
    "generic_035",
    "generic_060",
    "generic_080",
]
