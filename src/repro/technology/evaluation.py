"""Technology evaluation interface.

Section 4 of the paper: "A technology evaluation interface allows to easily
characterize different technologies and helps to choose the most suitable
technology."  :class:`TechnologyEvaluator` computes the standard analog
figures of merit (transit frequency, intrinsic gain, gm/ID) over bias and
length sweeps, and ranks candidate technologies for a given gain-bandwidth
target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.technology.process import Technology
from repro.units import UM


@dataclass
class TechnologyReport:
    """Summary figures of merit for one technology at a reference bias."""

    technology: str
    length: float
    veff: float
    ft_nmos: float
    ft_pmos: float
    intrinsic_gain_nmos: float
    intrinsic_gain_pmos: float
    gm_over_id_nmos: float
    gm_over_id_pmos: float
    rows: List[str] = field(default_factory=list)

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"Technology {self.technology} (L={self.length / UM:.2f}um, "
            f"Veff={self.veff:.2f}V)",
            f"  fT       : nmos {self.ft_nmos / 1e9:7.2f} GHz, "
            f"pmos {self.ft_pmos / 1e9:7.2f} GHz",
            f"  gm*ro    : nmos {self.intrinsic_gain_nmos:7.1f}, "
            f"pmos {self.intrinsic_gain_pmos:7.1f}",
            f"  gm/ID    : nmos {self.gm_over_id_nmos:7.2f} 1/V, "
            f"pmos {self.gm_over_id_pmos:7.2f} 1/V",
        ]
        return "\n".join(lines)


class TechnologyEvaluator:
    """Characterise a technology with the library's own device models."""

    def __init__(self, technology: Technology, model_level: int = 1):
        technology.validate()
        self.technology = technology
        self.model_level = model_level

    def _model(self, polarity: str):
        # Imported lazily: repro.mos depends on repro.technology.
        from repro.mos import make_model

        return make_model(self.technology.device(polarity), level=self.model_level)

    def transit_frequency(self, polarity: str, length: float, veff: float) -> float:
        """fT = gm / (2 pi (Cgs + Cgd)) for a saturated device.

        Independent of width to first order; evaluated at W = 10 um.
        """
        model = self._model(polarity)
        width = 10.0 * UM
        op = model.bias_saturated(width=width, length=length, veff=veff)
        return op.gm / (2.0 * math.pi * (op.cgs + op.cgd))

    def intrinsic_gain(self, polarity: str, length: float, veff: float) -> float:
        """Self gain gm/gds of a saturated device."""
        model = self._model(polarity)
        op = model.bias_saturated(width=10.0 * UM, length=length, veff=veff)
        return op.gm / op.gds

    def gm_over_id(self, polarity: str, length: float, veff: float) -> float:
        """Transconductance efficiency gm/ID at the given overdrive."""
        model = self._model(polarity)
        op = model.bias_saturated(width=10.0 * UM, length=length, veff=veff)
        return op.gm / abs(op.id)

    def ft_sweep(
        self, polarity: str, lengths: Iterable[float], veff: float
    ) -> List[tuple]:
        """(length, fT) pairs over a length sweep."""
        return [
            (length, self.transit_frequency(polarity, length, veff))
            for length in lengths
        ]

    def report(self, length: float | None = None, veff: float = 0.2) -> TechnologyReport:
        """Reference-point report used for cross-technology comparison."""
        if length is None:
            length = 2.0 * self.technology.feature_size
        return TechnologyReport(
            technology=self.technology.name,
            length=length,
            veff=veff,
            ft_nmos=self.transit_frequency("n", length, veff),
            ft_pmos=self.transit_frequency("p", length, veff),
            intrinsic_gain_nmos=self.intrinsic_gain("n", length, veff),
            intrinsic_gain_pmos=self.intrinsic_gain("p", length, veff),
            gm_over_id_nmos=self.gm_over_id("n", length, veff),
            gm_over_id_pmos=self.gm_over_id("p", length, veff),
        )


def rank_technologies(
    technologies: Sequence[Technology], gbw_target: float, veff: float = 0.2
) -> List[tuple]:
    """Rank technologies by fT headroom over a GBW target.

    A common analog rule of thumb places the non-dominant poles near the
    device fT; requiring fT >> GBW gives a quick suitability metric.
    Returns ``(technology, headroom)`` sorted best-first, where headroom is
    ``min(fT_n, fT_p) / gbw_target``.
    """
    ranked = []
    for technology in technologies:
        evaluator = TechnologyEvaluator(technology)
        report = evaluator.report(veff=veff)
        headroom = min(report.ft_nmos, report.ft_pmos) / gbw_target
        ranked.append((technology, headroom))
    ranked.sort(key=lambda item: item[1], reverse=True)
    return ranked
