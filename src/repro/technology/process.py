"""Process description: MOS parameters, wells, contacts, full technology.

The same :class:`MosParams` objects parameterise both the circuit simulator
(:mod:`repro.analysis`) and the sizing tool (:mod:`repro.sizing`).  Using one
shared model in both tools is one of the paper's accuracy arguments
(section 4: "Accuracy with respect to simulation is greatly improved by
using the same transistor models implemented in the latter").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import TechnologyError
from repro.technology.metals import MetalLayer
from repro.technology.rules import DesignRules
from repro.units import EPSILON_SIO2


@dataclass(frozen=True)
class MosParams:
    """SPICE-style MOS parameters for one device polarity.

    The sign convention follows SPICE: for PMOS, ``vto`` is negative and the
    model code works with source-referred magnitudes.  All units SI.
    """

    name: str
    polarity: str
    """'n' or 'p'."""
    vto: float
    """Zero-bias threshold voltage, V (negative for PMOS)."""
    u0: float
    """Low-field mobility, m^2/(V s)."""
    tox: float
    """Gate oxide thickness, m."""
    gamma: float
    """Body-effect coefficient, V^0.5."""
    phi: float
    """Surface potential 2*phi_F, V."""
    lambda_l: float
    """Channel-length-modulation coefficient-length product, m/V.

    The effective CLM parameter is ``lambda = lambda_l / L`` so longer
    devices show proportionally higher output resistance.
    """
    theta: float
    """Vertical-field mobility-degradation coefficient, 1/V (level 3)."""
    vmax: float
    """Saturation velocity, m/s (level 3; 0 disables velocity saturation)."""
    # Junction (diffusion) capacitances -------------------------------------
    cj: float
    """Zero-bias bottom junction capacitance, F/m^2."""
    cjsw: float
    """Zero-bias sidewall junction capacitance, F/m."""
    mj: float
    """Bottom grading coefficient."""
    mjsw: float
    """Sidewall grading coefficient."""
    pb: float
    """Junction built-in potential, V."""
    # Overlap capacitances ----------------------------------------------------
    cgso: float
    """Gate-source overlap capacitance, F/m of gate width."""
    cgdo: float
    """Gate-drain overlap capacitance, F/m of gate width."""
    cgbo: float
    """Gate-bulk overlap capacitance, F/m of gate length."""
    # Noise --------------------------------------------------------------------
    kf: float
    """Flicker-noise coefficient (SPICE KF)."""
    af: float
    """Flicker-noise current exponent (SPICE AF)."""
    # Parasitic resistance ------------------------------------------------------
    rsh_diff: float
    """Diffusion sheet resistance, ohm/square."""
    # Mismatch (Pelgrom) ---------------------------------------------------------
    avt: float = 10e-9
    """Threshold mismatch coefficient A_VT, V*m (sigma_VT = avt/sqrt(WL))."""
    abeta: float = 0.02e-6
    """Current-factor mismatch coefficient A_beta, m."""

    def __deepcopy__(self, memo: object) -> "MosParams":
        # Frozen (immutable), so cloned circuits can share one instance;
        # this keeps Circuit.clone() cheap and lets the model cache hit
        # across clones (it keys by parameter value).
        return self

    @property
    def cox(self) -> float:
        """Gate capacitance per area, F/m^2."""
        return EPSILON_SIO2 / self.tox

    @property
    def kp(self) -> float:
        """Transconductance parameter u0*Cox, A/V^2."""
        return self.u0 * self.cox

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS: maps device voltages to NMOS-like ones."""
        return 1.0 if self.polarity == "n" else -1.0

    def validate(self) -> None:
        if self.polarity not in ("n", "p"):
            raise TechnologyError(
                f"MOS polarity must be 'n' or 'p', got {self.polarity!r}"
            )
        if self.polarity == "n" and self.vto <= 0.0:
            raise TechnologyError("NMOS vto must be positive")
        if self.polarity == "p" and self.vto >= 0.0:
            raise TechnologyError("PMOS vto must be negative")
        for attr in ("u0", "tox", "gamma", "phi", "lambda_l", "pb"):
            if getattr(self, attr) <= 0.0:
                raise TechnologyError(f"{self.name}: {attr} must be positive")
        for attr in ("cj", "cjsw", "cgso", "cgdo", "cgbo", "kf", "theta"):
            if getattr(self, attr) < 0.0:
                raise TechnologyError(f"{self.name}: {attr} must be non-negative")
        if not 0.0 < self.mj < 1.0 or not 0.0 < self.mjsw < 1.0:
            raise TechnologyError(f"{self.name}: grading coefficients must be in (0,1)")


@dataclass(frozen=True)
class WellParams:
    """N-well junction data, used for floating-well parasitics.

    When a PMOS device sits in a non-grounded well (e.g. a well tied to the
    source of a cascode), the well-to-substrate junction loads that net; the
    layout tool reports exact well sizes so the sizer can account for it
    (section 2: "Exact well sizes so that floating well capacitance can be
    calculated").
    """

    cj_area: float
    """Well-substrate bottom capacitance, F/m^2."""
    cj_perimeter: float
    """Well-substrate sidewall capacitance, F/m."""
    pb: float
    """Built-in potential, V."""
    mj: float
    """Grading coefficient."""

    def capacitance(self, area: float, perimeter: float, bias: float = 0.0) -> float:
        """Well junction capacitance at reverse ``bias`` volts."""
        factor = (1.0 + max(bias, 0.0) / self.pb) ** (-self.mj)
        return (self.cj_area * area + self.cj_perimeter * perimeter) * factor


@dataclass(frozen=True)
class ContactRule:
    """Electrical limits of a single contact/via cut."""

    max_current: float
    """Maximum DC current per cut, A."""
    resistance: float
    """Resistance per cut, ohm."""

    def cuts_for_current(self, current: float) -> int:
        """Number of cuts needed to carry ``current`` amperes reliably."""
        import math

        if self.max_current <= 0.0:
            raise TechnologyError("contact max_current must be positive")
        return max(1, math.ceil(abs(current) / self.max_current))


@dataclass(frozen=True)
class Technology:
    """Complete technology description used across the library."""

    name: str
    feature_size: float
    """Minimum drawn gate length, m."""
    nmos: MosParams
    pmos: MosParams
    rules: DesignRules
    metals: Dict[str, MetalLayer]
    poly: MetalLayer
    """Poly treated as a (resistive) routing layer for gate connections."""
    contact: ContactRule
    via: ContactRule
    well: WellParams
    supply_nominal: float = 3.3
    temperature: float = 300.15
    cap_density: float = 0.9e-3
    """Poly1-poly2 plate capacitance, F/m^2 (double-poly capacitors)."""
    default_ldif: float = field(default=0.0)
    """Default source/drain diffusion extension assumed *before* the first
    layout call, m.  If zero, derived from the design rules as ~3x the
    contacted strip width — deliberately conservative, since without
    layout information the sizer must budget for straps, bends and tap
    clearances around the diffusion (the over-estimation the paper's
    case 2 illustrates)."""

    def __post_init__(self) -> None:
        if self.default_ldif == 0.0:
            object.__setattr__(
                self, "default_ldif", 2.8 * self.rules.contacted_diffusion_width
            )

    def validate(self) -> None:
        """Check internal consistency; raise :class:`TechnologyError`."""
        if self.feature_size <= 0.0:
            raise TechnologyError("feature size must be positive")
        self.nmos.validate()
        self.pmos.validate()
        if self.nmos.polarity != "n" or self.pmos.polarity != "p":
            raise TechnologyError("nmos/pmos polarity fields are swapped")
        self.rules.validate()
        if abs(self.rules.poly_min_width - self.feature_size) > 1e-12:
            raise TechnologyError(
                "rules.poly_min_width must equal the technology feature size"
            )
        if not self.metals:
            raise TechnologyError("technology needs at least one metal layer")
        for layer in self.metals.values():
            layer.validate()
        self.poly.validate()
        if self.supply_nominal <= self.nmos.vto - self.pmos.vto:
            raise TechnologyError("nominal supply leaves no headroom")

    def fingerprint(self) -> str:
        """Stable content hash of the whole technology description.

        Two Technology objects with identical content share a
        fingerprint regardless of object identity — this is the "tech
        hash" component of layout-call memoization keys.  Computed once
        and cached on the instance (frozen dataclasses still own a
        ``__dict__``).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        import hashlib
        from dataclasses import fields as dataclass_fields, is_dataclass

        def tokens(value):
            if is_dataclass(value) and not isinstance(value, type):
                for field_info in dataclass_fields(value):
                    yield field_info.name
                    yield from tokens(getattr(value, field_info.name))
            elif isinstance(value, dict):
                for key in sorted(value):
                    yield str(key)
                    yield from tokens(value[key])
            elif isinstance(value, (list, tuple)):
                for item in value:
                    yield from tokens(item)
            else:
                yield repr(value)

        digest = hashlib.sha256(
            "\x1f".join(tokens(self)).encode()
        ).hexdigest()[:16]
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def device(self, polarity: str) -> MosParams:
        """Return the MOS parameter set for ``'n'`` or ``'p'``."""
        if polarity == "n":
            return self.nmos
        if polarity == "p":
            return self.pmos
        raise TechnologyError(f"unknown device polarity {polarity!r}")

    def metal(self, name: str) -> MetalLayer:
        """Return a routing layer by name (``'metal1'``, ``'poly'``, ...)."""
        if name == "poly":
            return self.poly
        try:
            return self.metals[name]
        except KeyError:
            raise TechnologyError(
                f"technology {self.name!r} has no metal layer {name!r}"
            ) from None
