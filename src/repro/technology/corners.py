"""Process corners.

Derives the classic five corners (tt/ss/ff/sf/fs) from a nominal
technology by skewing threshold voltage, mobility and oxide thickness per
polarity, optionally with a temperature change (mobility ~ T^-1.5 and
threshold ~ -2 mV/K folded into the parameter set, since the device models
evaluate at a fixed temperature).

Supports the paper's verification story ("statistical analysis to check
the reliability of the synthesized circuit") with deterministic worst-case
checks alongside the Monte-Carlo mismatch analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

from repro.errors import TechnologyError
from repro.technology.process import MosParams, Technology

#: Per-corner (vto shift magnitude sign, mobility factor, tox factor) for
#: the "slow" and "fast" device flavours.
_FLAVOURS: Dict[str, Tuple[float, float, float]] = {
    "slow": (+0.06, 0.88, 1.04),
    "typ": (0.0, 1.0, 1.0),
    "fast": (-0.06, 1.12, 0.96),
}

CORNERS = ("tt", "ss", "ff", "sf", "fs")
"""Supported corner names (NMOS flavour first, PMOS second)."""

_VTH_TEMPERATURE_COEFFICIENT = -2.0e-3
"""Threshold magnitude drift, V/K."""
_MOBILITY_TEMPERATURE_EXPONENT = -1.5


def _flavour_of(letter: str) -> str:
    if letter == "t":
        return "typ"
    if letter == "s":
        return "slow"
    if letter == "f":
        return "fast"
    raise TechnologyError(f"unknown corner letter {letter!r}")


def _skew(
    params: MosParams, flavour: str, delta_t: float
) -> MosParams:
    vto_shift, mobility_factor, tox_factor = _FLAVOURS[flavour]
    sign = 1.0 if params.polarity == "n" else -1.0
    # Temperature: mobility drops, threshold magnitude drops with T.
    temperature_ratio = (300.15 + delta_t) / 300.15
    mobility_factor *= temperature_ratio**_MOBILITY_TEMPERATURE_EXPONENT
    vto_magnitude_shift = _VTH_TEMPERATURE_COEFFICIENT * delta_t
    return dataclasses.replace(
        params,
        vto=params.vto + sign * (vto_shift + vto_magnitude_shift),
        u0=params.u0 * mobility_factor,
        tox=params.tox * tox_factor,
    )


def corner(
    technology: Technology, name: str = "tt", delta_temperature: float = 0.0
) -> Technology:
    """A skewed copy of ``technology`` at the named corner.

    ``name`` is two letters, NMOS flavour then PMOS flavour (``ss``,
    ``ff``, ``sf``, ``fs``, ``tt``).  ``delta_temperature`` is the kelvin
    offset from the nominal 27 C.
    """
    if len(name) != 2:
        raise TechnologyError(f"corner name must be two letters, got {name!r}")
    n_flavour = _flavour_of(name[0])
    p_flavour = _flavour_of(name[1])
    skewed = dataclasses.replace(
        technology,
        name=f"{technology.name}-{name}"
        + (f"@{27 + delta_temperature:.0f}C" if delta_temperature else ""),
        nmos=_skew(technology.nmos, n_flavour, delta_temperature),
        pmos=_skew(technology.pmos, p_flavour, delta_temperature),
        temperature=300.15 + delta_temperature,
    )
    skewed.validate()
    return skewed


def corner_set(
    technology: Technology,
    names: Sequence[str] = CORNERS,
    delta_temperature: float = 0.0,
) -> Dict[str, Technology]:
    """Named corners keyed by name, in the given order.

    The natural input for ensemble corner verification: every returned
    technology shares the nominal's topology, so the replicas stack into
    one batched solve.
    """
    return {
        name: corner(technology, name, delta_temperature) for name in names
    }


def all_corners(
    technology: Technology, delta_temperature: float = 0.0
) -> Dict[str, Technology]:
    """All five corners keyed by name."""
    return corner_set(technology, CORNERS, delta_temperature)
