"""Parallel batch driver for multi-case experiments.

Runs Table-1 cases, process-corner replicas and flow variants
concurrently on a process pool behind ``python -m repro table1 --jobs N``.
The dispatch discipline reuses the Monte-Carlo shard-recovery machinery
(:mod:`repro.analysis.montecarlo`): task payloads are pickle-validated
before any worker spawns, a task whose worker dies (or times out) is
resubmitted on a fresh pool a bounded number of times and then run
in-process, and worker-side telemetry crosses the process boundary as a
picklable trace payload the parent absorbs.

Determinism: every :class:`BatchTask` is a self-contained value — the
worker rebuilds its technology from the preset registry, so no solver or
layout cache state is shared between tasks — and results are returned in
task order, never completion order.  A parallel run is therefore
bit-identical to the serial one; :meth:`CaseResult.fingerprint` is the
comparison handle (it excludes wall-clock timings by construction).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.errors import JournalError, SynthesisError
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.resilience.journal import RunJournal, ignore_sigint
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.telemetry import metrics, monitor
from repro.technology import generic_035, generic_060, generic_080
from repro.technology.corners import corner as technology_corner
from repro.technology.process import Technology

#: Preset registry keyed the way the CLI names technologies.  Tasks carry
#: the key, not the object: workers rebuild the technology in-process,
#: which keeps payloads small and every per-technology cache task-local.
TECHNOLOGY_PRESETS: Dict[str, Callable[[], Technology]] = {
    "0.35um": generic_035,
    "0.6um": generic_060,
    "0.8um": generic_080,
}


@dataclass(frozen=True)
class BatchTask:
    """One self-contained unit of batch work (picklable by construction)."""

    kind: str
    """``case`` (one Table-1 column) or ``flow`` (one flow variant)."""
    technology: str
    """Preset key in :data:`TECHNOLOGY_PRESETS`."""
    specs: OtaSpecs
    mode: str = ParasiticMode.FULL.name
    """ParasiticMode *name* for ``case`` tasks."""
    variant: str = "oriented"
    """``traditional`` or ``oriented`` for ``flow`` tasks."""
    corner: Optional[str] = None
    """Optional process-corner name (``tt``/``ss``/``ff``/``sf``/``fs``)."""
    model_level: int = 1
    aspect: Optional[float] = 1.0

    @property
    def label(self) -> str:
        suffix = f"@{self.corner}" if self.corner else ""
        if self.kind == "case":
            return f"case.{self.mode.lower()}{suffix}"
        return f"flow.{self.variant}{suffix}"


@dataclass
class TaskStatus:
    """Fate of one batch task (mirrors the Monte-Carlo ``ShardStatus``)."""

    index: int
    label: str
    attempts: int = 0
    status: str = "pending"
    """``ok`` | ``resubmitted`` | ``in-process`` | ``serial`` |
    ``journaled`` (restored from a resumed run journal, zero attempts)."""
    error: Optional[str] = None
    """Last failure seen (worker death, timeout), even when recovered."""


@dataclass
class BatchResult:
    """Results in task order plus the per-task dispatch record."""

    results: List[object]
    statuses: List[TaskStatus]
    jobs: int


def _build_technology(task: BatchTask) -> Technology:
    try:
        factory = TECHNOLOGY_PRESETS[task.technology]
    except KeyError:
        raise SynthesisError(
            f"unknown technology preset {task.technology!r} "
            f"(expected one of {sorted(TECHNOLOGY_PRESETS)})"
        ) from None
    technology = factory()
    if task.corner is not None:
        technology = technology_corner(technology, task.corner)
    return technology


def verify_task_corners(
    task: BatchTask,
    result: object,
    corners: Optional[Sequence[str]] = None,
    ensemble: Optional[str] = None,
) -> Dict[str, object]:
    """Process-corner verification of a completed ``case`` task.

    Rebuilds the task's nominal technology from the preset registry,
    re-plans it, and re-verifies the task's converged sizing at each
    corner — on the stacked ensemble engine all corner replicas share
    one compiled program (see
    :meth:`~repro.sizing.verification.VerificationInterface.verify_corners`).
    Returns ``{corner: VerificationReport}``.
    """
    from repro.sizing.plans.folded_cascode import FoldedCascodePlan
    from repro.sizing.verification import VerificationInterface
    from repro.technology.corners import CORNERS, corner_set

    if task.kind != "case":
        raise SynthesisError(
            f"corner verification needs a 'case' task, got {task.kind!r}"
        )
    sizing = getattr(result, "sizing", None)
    if sizing is None:
        raise SynthesisError(
            "corner verification needs a completed CaseResult with a sizing"
        )
    nominal = _build_technology(
        BatchTask(kind=task.kind, technology=task.technology, specs=task.specs)
    )
    plan = FoldedCascodePlan(nominal, task.model_level)
    names = tuple(corners) if corners is not None else CORNERS
    with telemetry.span(
        "batch.verify_corners", technology=task.technology, corners=len(names)
    ):
        return VerificationInterface().verify_corners(
            plan,
            sizing,
            task.specs,
            corners=corner_set(nominal, names),
            ensemble=ensemble,
        )


def run_task(task: BatchTask) -> object:
    """Execute one task; the single entry point serial and pooled paths share.

    ``case`` tasks return a :class:`~repro.core.cases.CaseResult`;
    ``flow`` tasks return a
    :class:`~repro.core.traditional.TraditionalOutcome` or a
    :class:`~repro.core.synthesis.SynthesisOutcome` depending on the
    variant.
    """
    technology = _build_technology(task)
    if task.kind == "case":
        from repro.core.cases import run_case

        return run_case(
            technology,
            task.specs,
            ParasiticMode[task.mode],
            model_level=task.model_level,
            aspect=task.aspect,
        )
    if task.kind == "flow":
        if task.variant == "traditional":
            from repro.core.traditional import TraditionalFlow

            return TraditionalFlow(
                technology, model_level=task.model_level, aspect=task.aspect
            ).run(task.specs)
        if task.variant == "oriented":
            from repro.core.synthesis import LayoutOrientedSynthesizer

            return LayoutOrientedSynthesizer(
                technology, model_level=task.model_level, aspect=task.aspect
            ).run(task.specs, ParasiticMode.FULL, generate=False)
        raise SynthesisError(f"unknown flow variant {task.variant!r}")
    raise SynthesisError(f"unknown batch task kind {task.kind!r}")


def _run_task_worker(task: BatchTask, crash: bool = False) -> object:
    """Pool-side task entry; ``crash`` is the fault-injection hook (the
    parent's registry decides a worker should die and it obliges with an
    unclean exit, so the recovery path sees a genuine broken pool)."""
    if crash:
        os._exit(1)
    return run_task(task)


def _run_task_traced(
    task: BatchTask, index: int, crash: bool = False
) -> Tuple[object, Dict[str, object]]:
    """Worker-side traced task: runs under a local tracer and ships the
    picklable trace payload — spans, counters and the scoped metrics
    delta (:func:`~repro.telemetry.core.traced_worker`) — back with the
    result (the parent grafts it under its ``batch.run`` span, exactly
    like Monte-Carlo shards).  Also the in-process recovery entry, so a
    task recovered from a dead worker reports identical telemetry."""
    if crash:
        os._exit(1)
    t0 = time.perf_counter()
    with telemetry.traced_worker(
        "batch.task", index=index, label=task.label
    ) as tracer:
        result = run_task(task)
        metrics.observe("batch.task.seconds", time.perf_counter() - t0)
    return result, tracer.trace_payload()


def _task_key(index: int) -> str:
    return f"task.{index}"


def _restore_journaled(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    results: List[object],
    journal: Optional[RunJournal],
) -> List[int]:
    """Fill ``results`` from the journal; return the still-pending indices.

    A journaled unit whose recorded label does not match the task at the
    same index means the resumed invocation built a different task list —
    refuse rather than silently mix incompatible results.
    """
    pending: List[int] = []
    for i, task in enumerate(tasks):
        key = _task_key(i)
        if journal is None or not journal.has(key):
            pending.append(i)
            continue
        label = journal.unit_meta(key).get("label")
        if label is not None and label != task.label:
            raise JournalError(
                f"journaled unit {key!r} is {label!r} but this run's task "
                f"{i} is {task.label!r}; the task list changed — refusing "
                f"to resume"
            )
        results[i] = journal.result(key)
        statuses[i].status = "journaled"
        telemetry.count("batch.journaled_tasks")
        monitor.unit_complete("task", label=task.label, restored=True)
    return pending


def _run_serial(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    budget: Optional[Budget],
    journal: Optional[RunJournal] = None,
) -> List[object]:
    results: List[object] = [None] * len(tasks)
    for i in _restore_journaled(tasks, statuses, results, journal):
        task = tasks[i]
        if journal is not None:
            journal.check_interrupt("batch.task")
        if budget is not None:
            budget.check("batch.task", index=i)
        statuses[i].attempts += 1
        instrumented = metrics.enabled() or monitor.active()
        t0 = time.perf_counter() if instrumented else 0.0
        with telemetry.span("batch.task", index=i, label=task.label):
            results[i] = run_task(task)
        if instrumented:
            seconds = time.perf_counter() - t0
            metrics.observe("batch.task.seconds", seconds)
            monitor.unit_complete("task", label=task.label, seconds=seconds)
        statuses[i].status = "serial"
        if journal is not None:
            journal.record(_task_key(i), results[i], label=task.label)
    return results


def _run_pooled(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    jobs: int,
    task_timeout: Optional[float],
    max_retries: int,
    budget: Optional[Budget],
    journal: Optional[RunJournal] = None,
) -> List[object]:
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError

    try:
        pickle.dumps(list(tasks))
    except Exception as error:
        # Submitting an unpicklable payload would wedge the pool's queue
        # feeder (unrecoverable on CPython < 3.12): refuse before any
        # worker is spawned.
        raise SynthesisError(
            f"batch payload cannot cross the process boundary "
            f"(jobs={jobs}): {error!r}"
        ) from error

    results: List[object] = [None] * len(tasks)
    pending = _restore_journaled(tasks, statuses, results, journal)
    tracer = telemetry.current()

    def harvest(i: int, outcome: object, submit_time: Optional[float]) -> None:
        """Accept one completed task result (and journal it durably)."""
        seconds = None
        if tracer is not None:
            results[i], payload = outcome
            tracer.absorb(payload, t_offset=submit_time)
            if submit_time is not None:
                seconds = tracer.now() - submit_time
        else:
            results[i] = outcome
        statuses[i].status = (
            "ok" if statuses[i].attempts == 1 else "resubmitted"
        )
        monitor.unit_complete("task", label=tasks[i].label, seconds=seconds)
        if journal is not None:
            journal.record(_task_key(i), results[i], label=tasks[i].label)

    for _round in range(1 + max_retries):
        if not pending:
            break
        if budget is not None:
            budget.check("batch.round", pending=len(pending))
        retry: List[int] = []
        # Workers ignore SIGINT: Ctrl-C reaches the whole process group,
        # and the parent must drain the pool into a checkpoint instead of
        # finding it already broken.
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), initializer=ignore_sigint
        )
        had_timeout = False
        futures = {}
        submit_times: Dict[int, float] = {}
        for i in pending:
            crash = faults.fire("batch.worker", index=i) is not None
            statuses[i].attempts += 1
            if tracer is not None:
                submit_times[i] = tracer.now()
                futures[i] = pool.submit(
                    _run_task_traced, tasks[i], i, crash
                )
            else:
                futures[i] = pool.submit(_run_task_worker, tasks[i], crash)
        try:
            for i, future in futures.items():
                if journal is not None and journal.interrupted:
                    # Shutdown signal: drain in-flight workers, journal
                    # every result that made it home, then stop cleanly.
                    pool.shutdown(wait=True, cancel_futures=True)
                    for j, done in futures.items():
                        if (
                            results[j] is None
                            and done.done()
                            and not done.cancelled()
                            and done.exception() is None
                        ):
                            harvest(j, done.result(), submit_times.get(j))
                    journal.check_interrupt("batch.drain")
                try:
                    harvest(
                        i,
                        future.result(timeout=task_timeout),
                        submit_times.get(i),
                    )
                except pickle.PicklingError as error:
                    # A result that cannot cross back can never succeed
                    # on a retry: fail fast with context.
                    raise SynthesisError(
                        f"batch task {i} ({tasks[i].label}) result could "
                        f"not cross the process boundary: {error!r}"
                    ) from error
                except FuturesTimeoutError:
                    had_timeout = True
                    statuses[i].error = (
                        f"task timed out after {task_timeout:g} s"
                    )
                    telemetry.count("batch.retries")
                    telemetry.event(
                        "batch.task_timeout", task=i, timeout_s=task_timeout
                    )
                    retry.append(i)
                except (BrokenExecutor, OSError, EOFError) as error:
                    statuses[i].error = (
                        f"worker died: {error!r} (task {i} of {len(tasks)}, "
                        f"jobs={jobs})"
                    )
                    telemetry.count("batch.retries")
                    telemetry.event(
                        "batch.worker_death", task=i, error=repr(error)
                    )
                    retry.append(i)
        except BaseException:
            # A task-level ReproError (or the pickling failure above)
            # propagates to the caller like a serial run's would; don't
            # leave the pool's workers running behind it.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        # A timed-out worker may still be running; don't block on it.
        pool.shutdown(wait=not had_timeout, cancel_futures=True)
        pending = retry

    # Bounded retries exhausted: bring the stragglers home in-process.
    # Task exceptions propagate here too — parity with the serial path.
    for i in pending:
        if journal is not None:
            journal.check_interrupt("batch.task-fallback")
        if budget is not None:
            budget.check("batch.task-fallback", task=i)
        statuses[i].attempts += 1
        if tracer is not None:
            # Recover with the *traced* worker entry so the task reports
            # the same ``batch.task`` span and counters a pool worker
            # would have shipped home (previously the fallback dropped
            # them and trace totals no longer matched a serial run).
            # ``merge_metrics=False``: the in-process hooks already fed
            # the shared registry live.
            t0 = tracer.now()
            with telemetry.span(
                "batch.task_fallback", index=i, label=tasks[i].label
            ):
                results[i], payload = _run_task_traced(tasks[i], i)
                tracer.absorb(payload, t_offset=t0, merge_metrics=False)
            monitor.unit_complete(
                "task", label=tasks[i].label, seconds=tracer.now() - t0
            )
        else:
            with telemetry.span(
                "batch.task_fallback", index=i, label=tasks[i].label
            ):
                results[i] = run_task(tasks[i])
            monitor.unit_complete("task", label=tasks[i].label)
        telemetry.count("batch.in_process")
        statuses[i].status = "in-process"
        if journal is not None:
            journal.record(_task_key(i), results[i], label=tasks[i].label)
    return results


def run_batch(
    tasks: Sequence[BatchTask],
    jobs: int = 1,
    task_timeout: Optional[float] = None,
    max_retries: int = 1,
    budget: Optional[Budget] = None,
    journal: Optional[RunJournal] = None,
) -> BatchResult:
    """Run every task, serially (``jobs=1``) or on a process pool.

    Results come back in task order regardless of completion order, and
    are bit-identical for any ``jobs`` value: tasks share no state, so
    parallelism only changes wall-clock time.  A task whose worker dies
    or exceeds ``task_timeout`` seconds is resubmitted up to
    ``max_retries`` times and then run in-process; a task that fails
    deterministically (raises inside the work itself) propagates its
    error exactly as a serial run would.  ``budget`` bounds wall-clock
    time at task/round boundaries via
    :class:`~repro.errors.BudgetExceededError`.

    ``journal`` makes the batch crash-safe: every completed task is
    appended durably, tasks already journaled by a previous run are
    restored without re-running (bit-identical — tasks are
    self-contained values), and a SIGINT/SIGTERM observed through the
    journal's shutdown guard drains in-flight workers into the journal
    before raising :class:`~repro.errors.RunInterrupted`.
    """
    if jobs < 1:
        raise SynthesisError(f"jobs must be >= 1, got {jobs!r}")
    tasks = list(tasks)
    statuses = [
        TaskStatus(index=i, label=task.label)
        for i, task in enumerate(tasks)
    ]
    effective_jobs = min(jobs, len(tasks)) if tasks else 1
    monitor.declare("task", len(tasks))
    with telemetry.span("batch.run", tasks=len(tasks), jobs=effective_jobs):
        telemetry.count("batch.tasks", len(tasks))
        if effective_jobs <= 1:
            results = _run_serial(tasks, statuses, budget, journal)
        else:
            results = _run_pooled(
                tasks, statuses, effective_jobs,
                task_timeout, max_retries, budget, journal,
            )
    return BatchResult(results=results, statuses=statuses, jobs=effective_jobs)
