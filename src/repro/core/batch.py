"""Parallel batch driver for multi-case experiments.

Runs Table-1 cases, process-corner replicas and flow variants
concurrently on a process pool behind ``python -m repro table1 --jobs N``.
The dispatch discipline reuses the Monte-Carlo shard-recovery machinery
(:mod:`repro.analysis.montecarlo`): task payloads are pickle-validated
before any worker spawns, a task whose worker dies (or times out) is
resubmitted on a fresh pool a bounded number of times and then run
in-process, and worker-side telemetry crosses the process boundary as a
picklable trace payload the parent absorbs.

Determinism: every :class:`BatchTask` is a self-contained value — the
worker rebuilds its technology from the preset registry, so no solver or
layout cache state is shared between tasks — and results are returned in
task order, never completion order.  A parallel run is therefore
bit-identical to the serial one; :meth:`CaseResult.fingerprint` is the
comparison handle (it excludes wall-clock timings by construction).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.errors import JournalError, SynthesisError
from repro.resilience.budget import Budget
from repro.resilience.journal import RunJournal
from repro.runtime import artifacts, pool as runtime_pool
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.telemetry import metrics, monitor
from repro.technology import generic_035, generic_060, generic_080
from repro.technology.corners import corner as technology_corner
from repro.technology.process import Technology

#: Preset registry keyed the way the CLI names technologies.  Tasks carry
#: the key, not the object: workers rebuild the technology in-process,
#: which keeps payloads small and every per-technology cache task-local.
TECHNOLOGY_PRESETS: Dict[str, Callable[[], Technology]] = {
    "0.35um": generic_035,
    "0.6um": generic_060,
    "0.8um": generic_080,
}


@dataclass(frozen=True)
class BatchTask:
    """One self-contained unit of batch work (picklable by construction)."""

    kind: str
    """``case`` (one Table-1 column) or ``flow`` (one flow variant)."""
    technology: str
    """Preset key in :data:`TECHNOLOGY_PRESETS`."""
    specs: OtaSpecs
    mode: str = ParasiticMode.FULL.name
    """ParasiticMode *name* for ``case`` tasks."""
    variant: str = "oriented"
    """``traditional`` or ``oriented`` for ``flow`` tasks."""
    corner: Optional[str] = None
    """Optional process-corner name (``tt``/``ss``/``ff``/``sf``/``fs``)."""
    model_level: int = 1
    aspect: Optional[float] = 1.0

    @property
    def label(self) -> str:
        suffix = f"@{self.corner}" if self.corner else ""
        if self.kind == "case":
            return f"case.{self.mode.lower()}{suffix}"
        return f"flow.{self.variant}{suffix}"


@dataclass
class TaskStatus:
    """Fate of one batch task (mirrors the Monte-Carlo ``ShardStatus``)."""

    index: int
    label: str
    attempts: int = 0
    status: str = "pending"
    """``ok`` | ``resubmitted`` | ``in-process`` | ``serial`` |
    ``journaled`` (restored from a resumed run journal, zero attempts) |
    ``cached`` (served by the cross-run artifact cache, zero attempts)."""
    error: Optional[str] = None
    """Last failure seen (worker death, timeout), even when recovered."""


@dataclass
class BatchResult:
    """Results in task order plus the per-task dispatch record."""

    results: List[object]
    statuses: List[TaskStatus]
    jobs: int


def _build_technology(task: BatchTask) -> Technology:
    try:
        factory = TECHNOLOGY_PRESETS[task.technology]
    except KeyError:
        raise SynthesisError(
            f"unknown technology preset {task.technology!r} "
            f"(expected one of {sorted(TECHNOLOGY_PRESETS)})"
        ) from None
    technology = factory()
    if task.corner is not None:
        technology = technology_corner(technology, task.corner)
    return technology


def verify_task_corners(
    task: BatchTask,
    result: object,
    corners: Optional[Sequence[str]] = None,
    ensemble: Optional[str] = None,
) -> Dict[str, object]:
    """Process-corner verification of a completed ``case`` task.

    Rebuilds the task's nominal technology from the preset registry,
    re-plans it, and re-verifies the task's converged sizing at each
    corner — on the stacked ensemble engine all corner replicas share
    one compiled program (see
    :meth:`~repro.sizing.verification.VerificationInterface.verify_corners`).
    Returns ``{corner: VerificationReport}``.
    """
    from repro.sizing.plans.folded_cascode import FoldedCascodePlan
    from repro.sizing.verification import VerificationInterface
    from repro.technology.corners import CORNERS, corner_set

    if task.kind != "case":
        raise SynthesisError(
            f"corner verification needs a 'case' task, got {task.kind!r}"
        )
    sizing = getattr(result, "sizing", None)
    if sizing is None:
        raise SynthesisError(
            "corner verification needs a completed CaseResult with a sizing"
        )
    nominal = _build_technology(
        BatchTask(kind=task.kind, technology=task.technology, specs=task.specs)
    )
    plan = FoldedCascodePlan(nominal, task.model_level)
    names = tuple(corners) if corners is not None else CORNERS
    with telemetry.span(
        "batch.verify_corners", technology=task.technology, corners=len(names)
    ):
        return VerificationInterface().verify_corners(
            plan,
            sizing,
            task.specs,
            corners=corner_set(nominal, names),
            ensemble=ensemble,
        )


def run_task(task: BatchTask) -> object:
    """Execute one task; the single entry point serial and pooled paths share.

    ``case`` tasks return a :class:`~repro.core.cases.CaseResult`;
    ``flow`` tasks return a
    :class:`~repro.core.traditional.TraditionalOutcome` or a
    :class:`~repro.core.synthesis.SynthesisOutcome` depending on the
    variant.
    """
    technology = _build_technology(task)
    if task.kind == "case":
        from repro.core.cases import run_case

        return run_case(
            technology,
            task.specs,
            ParasiticMode[task.mode],
            model_level=task.model_level,
            aspect=task.aspect,
        )
    if task.kind == "flow":
        if task.variant == "traditional":
            from repro.core.traditional import TraditionalFlow

            return TraditionalFlow(
                technology, model_level=task.model_level, aspect=task.aspect
            ).run(task.specs)
        if task.variant == "oriented":
            from repro.core.synthesis import LayoutOrientedSynthesizer

            return LayoutOrientedSynthesizer(
                technology, model_level=task.model_level, aspect=task.aspect
            ).run(task.specs, ParasiticMode.FULL, generate=False)
        raise SynthesisError(f"unknown flow variant {task.variant!r}")
    raise SynthesisError(f"unknown batch task kind {task.kind!r}")


def _run_task_worker(task: BatchTask, crash: bool = False) -> object:
    """Pool-side task entry; ``crash`` is the fault-injection hook (the
    parent's registry decides a worker should die and it obliges with an
    unclean exit, so the recovery path sees a genuine broken pool)."""
    if crash:
        os._exit(1)
    return run_task(task)


def _run_task_traced(
    task: BatchTask, index: int, crash: bool = False
) -> Tuple[object, Dict[str, object]]:
    """Worker-side traced task: runs under a local tracer and ships the
    picklable trace payload — spans, counters and the scoped metrics
    delta (:func:`~repro.telemetry.core.traced_worker`) — back with the
    result (the parent grafts it under its ``batch.run`` span, exactly
    like Monte-Carlo shards).  Also the in-process recovery entry, so a
    task recovered from a dead worker reports identical telemetry."""
    if crash:
        os._exit(1)
    t0 = time.perf_counter()
    with telemetry.traced_worker(
        "batch.task", index=index, label=task.label
    ) as tracer:
        result = run_task(task)
        metrics.observe("batch.task.seconds", time.perf_counter() - t0)
    return result, tracer.trace_payload()


def _run_task_payload(payload: bytes, crash: bool = False) -> object:
    """Pool-side entry over the pre-validated pickled task.

    Submitting the validation pass's own bytes means each task is
    pickled exactly once, parent-side, and the worker does the single
    ``loads`` the executor's argument machinery would have done anyway.
    """
    if crash:
        os._exit(1)
    return run_task(pickle.loads(payload))


def _run_task_payload_traced(
    payload: bytes, index: int, crash: bool = False
) -> Tuple[object, Dict[str, object]]:
    """Traced pool-side entry over the pre-validated pickled task."""
    if crash:
        os._exit(1)
    return _run_task_traced(pickle.loads(payload), index)


def _task_key(index: int) -> str:
    return f"task.{index}"


def _case_artifact_key(task: BatchTask) -> Optional[str]:
    """Content address of a ``case`` task's result, or ``None``.

    Keys fold the full task value (specs, mode, corner, model level,
    aspect), the resolved technology's content fingerprint, and every
    engine default that could steer the computation — so a run under a
    scoped engine override or an edited preset never collides with the
    default world.  Flow tasks return ``None``: their outcome objects
    carry stateful flow history that is cheap to recompute and awkward
    to address.
    """
    if task.kind != "case":
        return None
    from repro.analysis.engine import ensemble_engine, resolve_engine
    from repro.layout.engine import drc_engine, extraction_engine

    return artifacts.content_key(
        "case-result",
        task,
        _build_technology(task).fingerprint(),
        resolve_engine(None),
        ensemble_engine.resolve(None),
        extraction_engine.resolve(None),
        drc_engine.resolve(None),
    )


def _restore_cached(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    results: List[object],
    pending: List[int],
    journal: Optional[RunJournal],
) -> Tuple[List[int], List[Optional[str]]]:
    """Serve pending tasks from the cross-run artifact cache.

    Returns the still-pending indices plus each task's content key (for
    publishing computed results).  A hit is journaled like a computed
    result so a later resume restores it from the journal, which remains
    the authority on this run's history.  No-op (all pending, no keys)
    when no cache is active.
    """
    store = artifacts.active()
    keys: List[Optional[str]] = [None] * len(tasks)
    if store is None:
        return pending, keys
    still: List[int] = []
    for i in pending:
        task = tasks[i]
        keys[i] = _case_artifact_key(task)
        hit = store.get("case-result", keys[i]) if keys[i] else None
        if hit is None:
            still.append(i)
            continue
        results[i] = hit
        statuses[i].status = "cached"
        telemetry.count("batch.cached_tasks")
        monitor.unit_complete("task", label=task.label, restored=True)
        if journal is not None:
            journal.record(_task_key(i), hit, label=task.label)
    return still, keys


def _store_artifact(key: Optional[str], result: object) -> None:
    """Publish a freshly computed case result (no-op without a cache)."""
    if key is None:
        return
    store = artifacts.active()
    if store is not None:
        store.put("case-result", key, result)


def _restore_journaled(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    results: List[object],
    journal: Optional[RunJournal],
) -> List[int]:
    """Fill ``results`` from the journal; return the still-pending indices.

    A journaled unit whose recorded label does not match the task at the
    same index means the resumed invocation built a different task list —
    refuse rather than silently mix incompatible results.
    """
    pending: List[int] = []
    for i, task in enumerate(tasks):
        key = _task_key(i)
        if journal is None or not journal.has(key):
            pending.append(i)
            continue
        label = journal.unit_meta(key).get("label")
        if label is not None and label != task.label:
            raise JournalError(
                f"journaled unit {key!r} is {label!r} but this run's task "
                f"{i} is {task.label!r}; the task list changed — refusing "
                f"to resume"
            )
        results[i] = journal.result(key)
        statuses[i].status = "journaled"
        telemetry.count("batch.journaled_tasks")
        monitor.unit_complete("task", label=task.label, restored=True)
    return pending


def _run_serial(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    budget: Optional[Budget],
    journal: Optional[RunJournal] = None,
) -> List[object]:
    results: List[object] = [None] * len(tasks)
    pending = _restore_journaled(tasks, statuses, results, journal)
    pending, cache_keys = _restore_cached(
        tasks, statuses, results, pending, journal
    )
    for i in pending:
        task = tasks[i]
        if journal is not None:
            journal.check_interrupt("batch.task")
        if budget is not None:
            budget.check("batch.task", index=i)
        statuses[i].attempts += 1
        instrumented = metrics.enabled() or monitor.active()
        t0 = time.perf_counter() if instrumented else 0.0
        with telemetry.span("batch.task", index=i, label=task.label):
            results[i] = run_task(task)
        if instrumented:
            seconds = time.perf_counter() - t0
            metrics.observe("batch.task.seconds", seconds)
            monitor.unit_complete("task", label=task.label, seconds=seconds)
        statuses[i].status = "serial"
        if journal is not None:
            journal.record(_task_key(i), results[i], label=task.label)
        _store_artifact(cache_keys[i], results[i])
    return results


#: Batch's site vocabulary for the shared dispatch engine — the
#: budget/journal/fault names batch tasks have always used.
_BATCH_SITES = runtime_pool.DispatchSites(
    fault_site="batch.worker",
    budget_round="batch.round",
    drain_site="batch.drain",
    fallback_check="batch.task-fallback",
    budget_fallback="batch.task-fallback",
    unit_kw="task",
)


class _BatchDispatch:
    """Batch's unit semantics for :func:`repro.runtime.pool.run_dispatch`:
    how to submit a task, harvest its result, record a failure, and
    recover in-process.  The engine owns pool lifecycle, retry rounds,
    journal drain and budget checkpoints."""

    transport_exceptions = (pickle.PicklingError,)

    def __init__(
        self,
        tasks: Sequence[BatchTask],
        payloads: Sequence[bytes],
        statuses: List[TaskStatus],
        results: List[object],
        cache_keys: Sequence[Optional[str]],
        journal: Optional[RunJournal],
        jobs: int,
    ):
        self.tasks = tasks
        self.payloads = payloads
        self.statuses = statuses
        self.results = results
        self.cache_keys = cache_keys
        self.journal = journal
        self.jobs = jobs
        self.tracer = telemetry.current()

    def begin_attempt(self, i: int) -> None:
        self.statuses[i].attempts += 1

    def has_result(self, i: int) -> bool:
        return self.results[i] is not None

    def submit(self, pool, lease, i: int, crash: bool, resend: bool):
        # Tasks are unique values, so there is no resident state to
        # fingerprint: the pre-validated payload bytes ship every time.
        if self.tracer is not None:
            return pool.submit(
                _run_task_payload_traced, self.payloads[i], i, crash
            )
        return pool.submit(_run_task_payload, self.payloads[i], crash)

    def accept(self, i: int, outcome, submit_time: Optional[float]) -> None:
        """Accept one completed task result (and journal it durably)."""
        seconds = None
        if self.tracer is not None:
            self.results[i], payload = outcome
            self.tracer.absorb(payload, t_offset=submit_time)
            if submit_time is not None:
                seconds = self.tracer.now() - submit_time
        else:
            self.results[i] = outcome
        self.statuses[i].status = (
            "ok" if self.statuses[i].attempts == 1 else "resubmitted"
        )
        monitor.unit_complete(
            "task", label=self.tasks[i].label, seconds=seconds
        )
        if self.journal is not None:
            self.journal.record(
                _task_key(i), self.results[i], label=self.tasks[i].label
            )
        _store_artifact(self.cache_keys[i], self.results[i])

    def note_timeout(self, i: int, timeout: Optional[float]) -> None:
        self.statuses[i].error = f"task timed out after {timeout:g} s"
        telemetry.count("batch.retries")
        telemetry.event("batch.task_timeout", task=i, timeout_s=timeout)

    def note_death(self, i: int, error: BaseException) -> None:
        self.statuses[i].error = (
            f"worker died: {error!r} (task {i} of {len(self.tasks)}, "
            f"jobs={self.jobs})"
        )
        telemetry.count("batch.retries")
        telemetry.event("batch.worker_death", task=i, error=repr(error))

    def transport_error(self, i: int, error: BaseException) -> Exception:
        # A result that cannot cross back can never succeed on a retry:
        # fail fast with context.
        return SynthesisError(
            f"batch task {i} ({self.tasks[i].label}) result could "
            f"not cross the process boundary: {error!r}"
        )

    def fallback(self, i: int) -> None:
        """In-process recovery; task exceptions propagate here too —
        parity with the serial path."""
        if self.tracer is not None:
            # Recover with the *traced* worker entry so the task reports
            # the same ``batch.task`` span and counters a pool worker
            # would have shipped home.  ``merge_metrics=False``: the
            # in-process hooks already fed the shared registry live.
            t0 = self.tracer.now()
            with telemetry.span(
                "batch.task_fallback", index=i, label=self.tasks[i].label
            ):
                self.results[i], payload = _run_task_traced(
                    self.tasks[i], i
                )
                self.tracer.absorb(payload, t_offset=t0, merge_metrics=False)
            monitor.unit_complete(
                "task", label=self.tasks[i].label,
                seconds=self.tracer.now() - t0,
            )
        else:
            with telemetry.span(
                "batch.task_fallback", index=i, label=self.tasks[i].label
            ):
                self.results[i] = run_task(self.tasks[i])
            monitor.unit_complete("task", label=self.tasks[i].label)
        telemetry.count("batch.in_process")
        self.statuses[i].status = "in-process"
        if self.journal is not None:
            self.journal.record(
                _task_key(i), self.results[i], label=self.tasks[i].label
            )
        _store_artifact(self.cache_keys[i], self.results[i])


def _run_pooled(
    tasks: Sequence[BatchTask],
    statuses: List[TaskStatus],
    jobs: int,
    task_timeout: Optional[float],
    max_retries: int,
    budget: Optional[Budget],
    journal: Optional[RunJournal] = None,
) -> List[object]:
    payloads: List[bytes] = []
    for i, task in enumerate(tasks):
        try:
            # The validation pass produces the submission payload: each
            # task is pickled exactly once (previously the whole list
            # was dumped for validation and every task dumped again at
            # submit time).
            payloads.append(pickle.dumps(task))
        except Exception as error:
            # Submitting an unpicklable payload would wedge the pool's
            # queue feeder (unrecoverable on CPython < 3.12): refuse
            # before any worker is spawned.
            raise SynthesisError(
                f"batch payload cannot cross the process boundary "
                f"(jobs={jobs}, task {i}: {task.label}): {error!r}"
            ) from error

    results: List[object] = [None] * len(tasks)
    pending = _restore_journaled(tasks, statuses, results, journal)
    pending, cache_keys = _restore_cached(
        tasks, statuses, results, pending, journal
    )
    dispatch = _BatchDispatch(
        tasks, payloads, statuses, results, cache_keys, journal, jobs
    )
    runtime_pool.run_dispatch(
        dispatch, pending, jobs, task_timeout, max_retries,
        budget, journal, _BATCH_SITES,
    )
    return results


def run_batch(
    tasks: Sequence[BatchTask],
    jobs: int = 1,
    task_timeout: Optional[float] = None,
    max_retries: int = 1,
    budget: Optional[Budget] = None,
    journal: Optional[RunJournal] = None,
) -> BatchResult:
    """Run every task, serially (``jobs=1``) or on a process pool.

    Results come back in task order regardless of completion order, and
    are bit-identical for any ``jobs`` value: tasks share no state, so
    parallelism only changes wall-clock time.  A task whose worker dies
    or exceeds ``task_timeout`` seconds is resubmitted up to
    ``max_retries`` times and then run in-process; a task that fails
    deterministically (raises inside the work itself) propagates its
    error exactly as a serial run would.  ``budget`` bounds wall-clock
    time at task/round boundaries via
    :class:`~repro.errors.BudgetExceededError`.

    ``journal`` makes the batch crash-safe: every completed task is
    appended durably, tasks already journaled by a previous run are
    restored without re-running (bit-identical — tasks are
    self-contained values), and a SIGINT/SIGTERM observed through the
    journal's shutdown guard drains in-flight workers into the journal
    before raising :class:`~repro.errors.RunInterrupted`.
    """
    if jobs < 1:
        raise SynthesisError(f"jobs must be >= 1, got {jobs!r}")
    tasks = list(tasks)
    statuses = [
        TaskStatus(index=i, label=task.label)
        for i, task in enumerate(tasks)
    ]
    effective_jobs = min(jobs, len(tasks)) if tasks else 1
    monitor.declare("task", len(tasks))
    with telemetry.span("batch.run", tasks=len(tasks), jobs=effective_jobs):
        telemetry.count("batch.tasks", len(tasks))
        if effective_jobs <= 1:
            results = _run_serial(tasks, statuses, budget, journal)
        else:
            results = _run_pooled(
                tasks, statuses, effective_jobs,
                task_timeout, max_retries, budget, journal,
            )
    return BatchResult(results=results, statuses=statuses, jobs=effective_jobs)
