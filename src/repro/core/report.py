"""Table-1-style reporting.

Formats case results as the paper does: one row per specification, one
column per case, each entry ``synthesized(extracted)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.metrics import OtaMetrics
from repro.core.cases import CaseResult

#: (label, attribute, scale, format) — the rows of Table 1.
TABLE1_ROWS: Tuple[Tuple[str, str, float, str], ...] = (
    ("DC gain (dB)", "dc_gain_db", 1.0, "{:.1f}"),
    ("GBW (MHz)", "gbw", 1e-6, "{:.1f}"),
    ("Phase margin (degrees)", "phase_margin_deg", 1.0, "{:.1f}"),
    ("Slew rate (V/us)", "slew_rate", 1e-6, "{:.1f}"),
    ("CMRR (dB)", "cmrr_db", 1.0, "{:.1f}"),
    ("Offset voltage (mV)", "offset_voltage", 1e3, "{:.2f}"),
    ("Output resistance (Mohm)", "output_resistance", 1e-6, "{:.2f}"),
    ("Input noise voltage (uV)", "input_noise_rms", 1e6, "{:.1f}"),
    ("Thermal noise density (nV/rtHz)", "thermal_noise_density", 1e9, "{:.2f}"),
    ("Flicker noise (uV/rtHz)", "flicker_noise_density", 1e6, "{:.2f}"),
    ("Power dissipation (mW)", "power", 1e3, "{:.2f}"),
)


def metrics_rows(metrics: OtaMetrics) -> Dict[str, float]:
    """Scaled Table-1 row values for one measurement."""
    return {
        label: getattr(metrics, attribute) * scale
        for label, attribute, scale, _fmt in TABLE1_ROWS
    }


def format_table1(results: Sequence[CaseResult], title: str = "Table 1") -> str:
    """Render case results in the paper's layout.

    Every cell is ``synthesized(extracted)``, matching the paper's
    "values between brackets are obtained from layout generation,
    extraction and simulation".
    """
    header = [f"{title}"]
    label_width = max(len(row[0]) for row in TABLE1_ROWS) + 2
    column_width = 18

    head_cells = "".join(
        f"{result.label:>{column_width}}" for result in results
    )
    header.append(f"{'Specification':<{label_width}}{head_cells}")
    header.append("-" * (label_width + column_width * len(results)))

    lines: List[str] = []
    for label, attribute, scale, fmt in TABLE1_ROWS:
        cells = []
        for result in results:
            synthesized = getattr(result.synthesized, attribute) * scale
            extracted = getattr(result.extracted, attribute) * scale
            cells.append(
                f"{fmt.format(synthesized)}({fmt.format(extracted)})"
            )
        row_cells = "".join(f"{cell:>{column_width}}" for cell in cells)
        lines.append(f"{label:<{label_width}}{row_cells}")

    footer = [
        "-" * (label_width + column_width * len(results)),
        f"{'Layout tool calls':<{label_width}}"
        + "".join(
            f"{result.layout_calls:>{column_width}}" for result in results
        ),
        f"{'Sizing time (s)':<{label_width}}"
        + "".join(
            f"{result.elapsed:>{column_width}.1f}" for result in results
        ),
    ]
    return "\n".join(header + lines + footer)
