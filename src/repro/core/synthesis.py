"""Layout-oriented synthesis loop (paper Figure 1b).

The sizing tool and the layout tool call each other until the layout
parasitics converge:

1. size the circuit (first pass assumes one fold per transistor and
   diffusion capacitance only);
2. call the layout tool in *parasitic calculation mode* — area
   optimisation fixes fold counts and wiring, and the parasitic report
   comes back (no geometry emitted);
3. re-size compensating the reported parasitics;
4. repeat until the report stops changing ("till the calculated parasitics
   remain unchanged" — three layout calls in the paper's example);
5. call the layout tool in *generation mode* for the physical layout.
"""

from __future__ import annotations

import copy
import hashlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import telemetry
from repro.errors import (
    BudgetExceededError,
    DegradedRunWarning,
    LayoutGenerationWarning,
    ReproError,
    SoftAcceptWarning,
    SynthesisError,
)
from repro.layout.ota import OtaLayoutRequest, OtaLayoutResult, generate_ota_layout
from repro.layout.parasitics import ParasiticReport
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.resilience.journal import RunJournal
from repro.runtime import artifacts, speculate
from repro.telemetry import metrics, monitor
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology
from repro.telemetry.replay import TraceSummary
from repro.units import FF


@dataclass
class SynthesisRecord:
    """One sizing + layout-estimation round."""

    round_index: int
    sizing: SizingResult
    report: ParasiticReport
    distance: float
    """Parasitic change vs the previous round, F (inf for the first)."""


@dataclass
class SynthesisOutcome:
    """Result of a full layout-oriented synthesis."""

    sizing: SizingResult
    feedback: ParasiticReport
    layout_calls: int
    records: List[SynthesisRecord] = field(default_factory=list)
    layout: Optional[OtaLayoutResult] = None
    elapsed: float = 0.0
    converged: bool = True
    diagnostics: Dict[str, object] = field(default_factory=dict)
    """Degradation record: ``soft_accept`` when the 10x-tolerance fallback
    fired, ``degraded``/``failed_round``/``failed_stage``/``failure`` when a
    mid-loop failure fell back to the last good round, ``generate_failure``
    when only the final generation pass failed."""
    trace: Optional[TraceSummary] = None
    """Telemetry summary of the run when a tracer was active, else None."""

    def fingerprint(self) -> str:
        """Stable content hash of the deterministic result payload.

        Covers the sizing, the converged feedback report, every round
        record and the final layout's report/fold configuration, and
        deliberately excludes wall-clock ``elapsed``, the geometry cell
        object, diagnostics text and the trace — so a run hashes
        identically whether its rounds were computed, replayed from a
        journal, served from the incremental caches or collected from a
        speculative worker.  The CI incremental-on/off determinism
        check compares these.
        """
        payload = (
            self.converged,
            self.layout_calls,
            self.sizing,
            self.feedback,
            tuple(self.records),
            None
            if self.layout is None
            else (self.layout.fold_config, self.layout.report),
        )
        joined = "\x1f".join(artifacts.canonical_tokens(payload))
        return hashlib.sha256(joined.encode()).hexdigest()[:16]


def _round_key(round_index: int) -> str:
    """Journal key of one synthesis round."""
    return f"round.{round_index}"


def _estimate_content(
    sizing, technology: Technology, aspect, prefer_even_folds
) -> Optional[tuple]:
    """Canonical content of one estimate-mode layout call, or None.

    Everything the built-in layout tool may read from the sizing —
    device W/L tuples, branch currents and bias voltages, all
    order-independent — plus the technology content hash and the
    synthesizer's geometry knobs.  Sizings that do not carry a real
    ``sizes`` mapping (scripted stand-ins in tests, degraded stubs)
    return None: their layout tools may be stateful, so every call must
    reach the tool.  Module-level so the speculative worker derives the
    same key as the main loop.
    """
    sizes = getattr(sizing, "sizes", None)
    if not isinstance(sizes, dict):
        return None

    def canon(name: str):
        mapping = getattr(sizing, name, None)
        if not isinstance(mapping, dict):
            return None
        return tuple(sorted(mapping.items()))

    return (
        canon("sizes"),
        canon("currents"),
        canon("biases"),
        technology.fingerprint(),
        aspect,
        prefer_even_folds,
    )


def _warm_digest() -> str:
    """Exact digest of the innermost warm-start session's seeds.

    Hashes the raw float64 bytes (never a repr, which rounds), because
    a seed steers the Newton iterate path: two sizing rounds are only
    interchangeable when their warm state matches bit-for-bit.
    """
    from repro.analysis import warmstart

    digest = hashlib.sha256(b"repro-warm-v1")
    for key, seed in warmstart.snapshot().items():
        digest.update(repr(key).encode())
        digest.update(seed.tobytes())
    return digest.hexdigest()


def _speculative_estimate(payload):
    """Worker body of one speculative next-round evaluation.

    Replays the sizing the main loop is about to run — same plan, specs,
    feedback and warm-start seeds — then computes its layout estimate
    and returns it under the same content key
    :meth:`LayoutOrientedSynthesizer._estimate` will derive, so an
    accurate prediction is consumed as an exact hit and a stale one
    simply never matches.  Runs on a pool worker; module-level for
    picklability.
    """
    plan, specs, mode, feedback, warm, aspect, prefer_even_folds = payload
    from repro.analysis import warmstart

    with warmstart.session():
        warmstart.restore(warm)
        sizing = plan.size(specs, mode, feedback)
    request = OtaLayoutRequest(
        technology=plan.technology,
        sizes=sizing.sizes,
        currents=sizing.currents,
        aspect=aspect,
        prefer_even_folds=prefer_even_folds,
    )
    estimate = generate_ota_layout(request, mode="estimate")
    content = _estimate_content(
        sizing, plan.technology, aspect, prefer_even_folds
    )
    return artifacts.content_key("layout-estimate", content), estimate


class LayoutOrientedSynthesizer:
    """Couples the sizing plan with the layout generator (Figure 1b)."""

    def __init__(
        self,
        technology: Technology,
        model_level: int = 1,
        aspect: Optional[float] = 1.0,
        convergence_tolerance: float = 2.0 * FF,
        max_layout_calls: int = 6,
        prefer_even_folds: bool = True,
        plan=None,
        layout_tool=None,
    ):
        """``plan`` defaults to the folded-cascode plan; ``layout_tool``
        is a callable ``(sizing, mode) -> result-with-.report`` letting
        other topologies (e.g. the two-stage OTA) reuse the same loop."""
        if max_layout_calls < 1:
            raise SynthesisError(
                f"max_layout_calls must be >= 1 (the loop needs at least "
                f"one sizing/estimation round), got {max_layout_calls!r}"
            )
        if not convergence_tolerance > 0.0:
            raise SynthesisError(
                f"convergence_tolerance must be positive, "
                f"got {convergence_tolerance!r}"
            )
        technology.validate()
        self.technology = technology
        self.model_level = model_level
        self.aspect = aspect
        self.convergence_tolerance = convergence_tolerance
        self.max_layout_calls = max_layout_calls
        self.prefer_even_folds = prefer_even_folds
        self.plan = plan or FoldedCascodePlan(technology, model_level)
        self.layout_tool = layout_tool or self._default_layout_tool
        #: Only the built-in layout tool is pure in its inputs; custom
        #: tools (scripted stand-ins, stateful mocks) must never be
        #: served from the cross-run artifact cache.
        self._default_tool = layout_tool is None
        #: Parasitic-estimate results keyed on canonicalized sizing content
        #: plus the technology fingerprint — a converged round that
        #: re-requests identical geometry skips the layout rebuild.
        self._estimate_cache: Dict[tuple, object] = {}

    def _layout_request(self, sizing: SizingResult) -> OtaLayoutRequest:
        return OtaLayoutRequest(
            technology=self.technology,
            sizes=sizing.sizes,
            currents=sizing.currents,
            aspect=self.aspect,
            prefer_even_folds=self.prefer_even_folds,
        )

    def _default_layout_tool(self, sizing: SizingResult, mode: str):
        return generate_ota_layout(self._layout_request(sizing), mode=mode)

    def _estimate_key(self, sizing) -> Optional[tuple]:
        """Memoization key for a parasitic-estimate call, or None."""
        return _estimate_content(
            sizing, self.technology, self.aspect, self.prefer_even_folds
        )

    def _cached_estimate(self, key, result):
        """Account one estimate served without a rebuild and return it.

        Still a logical layout call — only the rebuild is skipped — so
        traces keep one layout.call span per synthesis round.
        """
        with telemetry.span("layout.call", mode="estimate", cached=True):
            telemetry.count("layout.calls.estimate")
            telemetry.count("layout.cache.hit")
        self._estimate_cache[key] = result
        return result

    def _estimate(self, sizing):
        """The layout tool in estimate mode, memoized where safe.

        Lookup order: in-memory memo, cross-run artifact store, landed
        speculative results (:mod:`repro.runtime.speculate`) — all keyed
        on the same canonical content, so every source returns the bits
        a local rebuild would produce.
        """
        key = self._estimate_key(sizing)
        if key is None:
            return self.layout_tool(sizing, "estimate")
        cached = self._estimate_cache.get(key)
        if cached is not None:
            return self._cached_estimate(key, cached)
        store = artifacts.active() if self._default_tool else None
        scope = speculate.active() if self._default_tool else None
        content_key = (
            artifacts.content_key("layout-estimate", key)
            if store is not None or scope is not None
            else None
        )
        if store is not None:
            persisted = store.get("layout-estimate", content_key)
            if persisted is not None:
                return self._cached_estimate(key, persisted)
        if scope is not None:
            landed = scope.collect(content_key, wait_s=scope.wait_s)
            if landed is not None:
                if store is not None:
                    store.put("layout-estimate", content_key, landed)
                return self._cached_estimate(key, landed)
        telemetry.count("layout.cache.miss")
        result = self.layout_tool(sizing, "estimate")
        self._estimate_cache[key] = result
        if store is not None:
            store.put("layout-estimate", content_key, result)
        return result

    def _sizing_key(self, specs, mode, feedback, budget) -> Optional[str]:
        """Memoization key for one whole sizing round, or None.

        Only pure rounds are memoizable: the plan must publish a
        config key (:meth:`~repro.sizing.plans.base.DesignPlan.config_key`),
        no budget may be active (a budget can cap iterations
        differently per call), and the incremental engine must be on.
        The key covers the active analysis/newton engine switches and
        an exact digest of the warm-start state, because both steer the
        DC iterate path the plan's verification solves take.
        """
        from repro.analysis import engine as analysis_engine
        from repro.layout import incremental

        if budget is not None or not incremental.enabled():
            return None
        # Duck-typed: stub plans in tests may not subclass DesignPlan at
        # all — no config key means no memoization, same as None.
        config = getattr(self.plan, "config_key", lambda: None)()
        if config is None:
            return None
        return artifacts.content_key(
            "sizing-round",
            config,
            specs,
            mode.name,
            feedback,
            analysis_engine.default_engine(),
            analysis_engine.newton_engine.default(),
            _warm_digest(),
        )

    def _size_round(self, specs, mode, feedback, budget):
        """One sizing round, memoized on full content where safe.

        The cached value carries the warm-start snapshot taken *after*
        the original call; a hit restores it, so every downstream DC
        solve — the next round's, the Monte-Carlo stage's — sees the
        exact seed state a recomputation would have produced and the
        run's bits are independent of cache temperature.
        """
        from repro.analysis import warmstart
        from repro.layout import incremental

        key = self._sizing_key(specs, mode, feedback, budget)
        cached = incremental.lookup_sizing(key)
        if cached is not None:
            sizing, warm_after = cached
            warmstart.restore(warm_after)
            with telemetry.span("synthesis.sizing", cached=True):
                pass
            return copy.deepcopy(sizing)
        with telemetry.span("synthesis.sizing"):
            sizing = self.plan.size(specs, mode, feedback, budget=budget)
        incremental.store_sizing(
            key, (copy.deepcopy(sizing), warmstart.snapshot())
        )
        return sizing

    def _land_speculation(self, key, value) -> None:
        """Write one landed speculative estimate through to the artifact
        store so mis-speculation still warms future runs."""
        store = artifacts.active()
        if store is not None:
            store.put("layout-estimate", key, value)

    def _maybe_speculate(self, specs, mode, feedback, budget) -> None:
        """Dispatch the likely next round ahead of need (never blocking).

        Only for the built-in layout tool driven by a pure
        (config-keyed) plan, with no budget (a budget may cap the
        worker's iterations differently) and no armed fault plan.  The
        worker replays sizing from this exact warm-start snapshot, so
        an accurate prediction lands its estimate under the very
        content key the next round derives.
        """
        scope = speculate.active()
        if scope is None or not self._default_tool:
            return
        if budget is not None or faults.active():
            return
        if getattr(self.plan, "config_key", lambda: None)() is None:
            return
        from repro.analysis import warmstart

        scope.set_lander(self._land_speculation)
        scope.submit(
            _speculative_estimate,
            (
                self.plan,
                specs,
                mode,
                feedback,
                warmstart.snapshot(),
                self.aspect,
                self.prefer_even_folds,
            ),
        )

    def run(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.FULL,
        generate: bool = True,
        budget: Optional[Budget] = None,
        journal: Optional[RunJournal] = None,
    ) -> SynthesisOutcome:
        """Run the coupled loop.

        ``mode`` must be one of the layout-aware modes (cases 3/4); the
        non-layout cases have nothing to iterate with.

        ``budget`` bounds the loop: its deadline is checked at every round
        boundary (and inside the sizing plan), and expiry raises
        :class:`~repro.errors.BudgetExceededError` whose ``partial``
        attribute carries the completed :class:`SynthesisRecord` list.

        A sizing or layout-tool failure after at least one completed round
        degrades to the last good round — ``converged=False`` and a
        populated :attr:`SynthesisOutcome.diagnostics` — instead of losing
        all progress; a failure on the very first round (nothing to fall
        back to) raises :class:`SynthesisError`.

        With a tracer active (:mod:`repro.telemetry`), the loop records a
        ``synthesis.run`` span with one ``synthesis.round`` child per
        round, and the returned outcome carries the
        :class:`~repro.telemetry.replay.TraceSummary` in ``.trace``.

        ``journal`` makes the loop crash-safe: every completed round is
        appended durably together with a snapshot of the warm-start
        session, and on resume the journaled rounds are replayed — record
        list, feedback report *and* warm-start seeds restored — so the
        remaining rounds produce bit-identical Newton iterates and the
        final outcome matches an uninterrupted run exactly.
        """
        if not mode.uses_layout:
            raise SynthesisError(
                "layout-oriented synthesis needs a layout-aware parasitic "
                "mode (LAYOUT_DIFFUSION or FULL)"
            )
        from repro.analysis import warmstart

        with telemetry.span(
            "synthesis.run",
            topology=self.plan.topology,
            mode=mode.name,
            generate=generate,
        ), warmstart.session():
            # Round r+1's verification bench has round r's node layout, so
            # each round's DC solve seeds from the previous converged
            # voltages (repro.analysis.warmstart); the session dies with
            # this run, keeping runs independent and batch fingerprints
            # serial/parallel-identical.
            outcome = self._run(specs, mode, generate, budget, journal)
        tracer = telemetry.current()
        if tracer is not None:
            outcome.trace = tracer.summary()
        return outcome

    def _run(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode,
        generate: bool,
        budget: Optional[Budget],
        journal: Optional[RunJournal] = None,
    ) -> SynthesisOutcome:
        from repro.analysis import warmstart

        start = time.perf_counter()
        records: List[SynthesisRecord] = []
        feedback: Optional[ParasiticReport] = None
        sizing: Optional[SizingResult] = None
        converged = False
        degraded = False
        diagnostics: Dict[str, object] = {}

        monitor.declare("round", self.max_layout_calls)
        try:
            for round_index in range(1, self.max_layout_calls + 1):
                if journal is not None:
                    unit = journal.result_or_none(_round_key(round_index))
                    if unit is not None:
                        # Replay a journaled round: restore the record,
                        # the feedback report and the warm-start seeds,
                        # then run the same convergence logic a live
                        # round would — the remaining live rounds see
                        # exactly the state the original run had here.
                        record = unit["record"]
                        warmstart.restore(unit["warm"])
                        records.append(record)
                        sizing = record.sizing
                        previous = feedback
                        feedback = record.report
                        telemetry.count("synthesis.journaled_rounds")
                        telemetry.event(
                            "synthesis.round.journaled",
                            round=round_index,
                            distance=record.distance,
                        )
                        monitor.unit_complete(
                            "round",
                            label=f"round {round_index}",
                            restored=True,
                        )
                        if (
                            previous is not None
                            and record.distance <= self.convergence_tolerance
                        ):
                            converged = True
                            break
                        continue
                    journal.check_interrupt("synthesis.round")
                if budget is not None:
                    budget.check("synthesis.round", round=round_index)
                instrumented = metrics.enabled() or monitor.active()
                round_t0 = time.perf_counter() if instrumented else 0.0
                with telemetry.span("synthesis.round", round=round_index):
                    telemetry.count("synthesis.rounds")
                    stage = "sizing"
                    try:
                        if faults.active():
                            faults.maybe_raise(
                                "synthesis.sizing", index=round_index
                            )
                        sizing = self._size_round(
                            specs, mode, feedback, budget
                        )
                        stage = "layout"
                        if faults.active():
                            faults.maybe_raise(
                                "synthesis.layout", index=round_index
                            )
                        estimate = self._estimate(sizing)
                    except BudgetExceededError:
                        raise
                    except ReproError as error:
                        if not records:
                            raise SynthesisError(
                                f"{stage} failed on synthesis round 1 with "
                                f"no completed round to fall back to: {error}"
                            ) from error
                        degraded = True
                        diagnostics.update(
                            degraded=True,
                            failed_round=round_index,
                            failed_stage=stage,
                            failure=repr(error),
                        )
                        telemetry.count("synthesis.degraded_rounds")
                        telemetry.event(
                            "synthesis.degraded",
                            round=round_index,
                            stage=stage,
                            error=repr(error),
                        )
                        warnings.warn(
                            f"synthesis {stage} failed on round "
                            f"{round_index} ({error}); degrading to the "
                            f"last good round {records[-1].round_index}",
                            DegradedRunWarning,
                            stacklevel=2,
                        )
                        break
                    if feedback is None:
                        distance = float("inf")
                    else:
                        distance = estimate.report.distance(feedback)
                    records.append(
                        SynthesisRecord(
                            round_index=round_index,
                            sizing=sizing,
                            report=estimate.report,
                            distance=distance,
                        )
                    )
                    previous = feedback
                    feedback = estimate.report
                    telemetry.event(
                        "synthesis.round.complete",
                        round=round_index,
                        distance=distance,
                        width=getattr(estimate.report, "width", None),
                        height=getattr(estimate.report, "height", None),
                    )
                    if instrumented:
                        round_seconds = time.perf_counter() - round_t0
                        metrics.observe(
                            "synthesis.round.seconds", round_seconds
                        )
                        monitor.unit_complete(
                            "round",
                            label=f"round {round_index}",
                            seconds=round_seconds,
                        )
                    if journal is not None:
                        # The warm-start snapshot rides along so a resume
                        # re-enters the next round with identical Newton
                        # seeds (bit-identical warm-start chains).
                        journal.record(
                            _round_key(round_index),
                            {
                                "record": records[-1],
                                "warm": warmstart.snapshot(),
                            },
                            distance=distance,
                        )
                    if (
                        previous is not None
                        and distance <= self.convergence_tolerance
                    ):
                        converged = True
                        break
                    if round_index < self.max_layout_calls:
                        self._maybe_speculate(specs, mode, feedback, budget)
        except BudgetExceededError as error:
            # Hand the partial progress to the caller for diagnosis.
            if error.partial is None:
                error.partial = list(records)
            raise

        if degraded:
            # Fall back to the last round that produced a report.
            sizing = records[-1].sizing
            feedback = records[-1].report
        assert sizing is not None and feedback is not None
        if not degraded and not converged and len(records) >= self.max_layout_calls:
            # Accept the last round but flag how far off it still was.
            converged = records[-1].distance <= 10.0 * self.convergence_tolerance
            if converged:
                diagnostics["soft_accept"] = True
                diagnostics["final_distance"] = records[-1].distance
                telemetry.event(
                    "synthesis.soft_accept", distance=records[-1].distance
                )
                warnings.warn(
                    f"synthesis of {self.plan.topology!r} stopped at "
                    f"max_layout_calls={self.max_layout_calls} with the "
                    f"parasitic distance at {records[-1].distance:.3e} F — "
                    f"within 10x the tolerance, soft-accepting a "
                    f"non-fixed-point result",
                    SoftAcceptWarning,
                    stacklevel=2,
                )

        layout = None
        if generate:
            try:
                layout = self.layout_tool(sizing, "generate")
            except ReproError as error:
                diagnostics["generate_failure"] = repr(error)
                telemetry.event(
                    "synthesis.generate_failure", error=repr(error)
                )
                warnings.warn(
                    f"layout generation failed after a converged sizing "
                    f"({error}); returning the sizing without geometry",
                    LayoutGenerationWarning,
                    stacklevel=2,
                )

        return SynthesisOutcome(
            sizing=sizing,
            feedback=feedback,
            layout_calls=len(records),
            records=records,
            layout=layout,
            elapsed=time.perf_counter() - start,
            converged=converged and not degraded,
            diagnostics=diagnostics,
        )
