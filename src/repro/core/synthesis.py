"""Layout-oriented synthesis loop (paper Figure 1b).

The sizing tool and the layout tool call each other until the layout
parasitics converge:

1. size the circuit (first pass assumes one fold per transistor and
   diffusion capacitance only);
2. call the layout tool in *parasitic calculation mode* — area
   optimisation fixes fold counts and wiring, and the parasitic report
   comes back (no geometry emitted);
3. re-size compensating the reported parasitics;
4. repeat until the report stops changing ("till the calculated parasitics
   remain unchanged" — three layout calls in the paper's example);
5. call the layout tool in *generation mode* for the physical layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SynthesisError
from repro.layout.ota import OtaLayoutRequest, OtaLayoutResult, generate_ota_layout
from repro.layout.parasitics import ParasiticReport
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology
from repro.units import FF


@dataclass
class SynthesisRecord:
    """One sizing + layout-estimation round."""

    round_index: int
    sizing: SizingResult
    report: ParasiticReport
    distance: float
    """Parasitic change vs the previous round, F (inf for the first)."""


@dataclass
class SynthesisOutcome:
    """Result of a full layout-oriented synthesis."""

    sizing: SizingResult
    feedback: ParasiticReport
    layout_calls: int
    records: List[SynthesisRecord] = field(default_factory=list)
    layout: Optional[OtaLayoutResult] = None
    elapsed: float = 0.0
    converged: bool = True


class LayoutOrientedSynthesizer:
    """Couples the sizing plan with the layout generator (Figure 1b)."""

    def __init__(
        self,
        technology: Technology,
        model_level: int = 1,
        aspect: Optional[float] = 1.0,
        convergence_tolerance: float = 2.0 * FF,
        max_layout_calls: int = 6,
        prefer_even_folds: bool = True,
        plan=None,
        layout_tool=None,
    ):
        """``plan`` defaults to the folded-cascode plan; ``layout_tool``
        is a callable ``(sizing, mode) -> result-with-.report`` letting
        other topologies (e.g. the two-stage OTA) reuse the same loop."""
        technology.validate()
        self.technology = technology
        self.model_level = model_level
        self.aspect = aspect
        self.convergence_tolerance = convergence_tolerance
        self.max_layout_calls = max_layout_calls
        self.prefer_even_folds = prefer_even_folds
        self.plan = plan or FoldedCascodePlan(technology, model_level)
        self.layout_tool = layout_tool or self._default_layout_tool

    def _layout_request(self, sizing: SizingResult) -> OtaLayoutRequest:
        return OtaLayoutRequest(
            technology=self.technology,
            sizes=sizing.sizes,
            currents=sizing.currents,
            aspect=self.aspect,
            prefer_even_folds=self.prefer_even_folds,
        )

    def _default_layout_tool(self, sizing: SizingResult, mode: str):
        return generate_ota_layout(self._layout_request(sizing), mode=mode)

    def run(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.FULL,
        generate: bool = True,
    ) -> SynthesisOutcome:
        """Run the coupled loop.

        ``mode`` must be one of the layout-aware modes (cases 3/4); the
        non-layout cases have nothing to iterate with.
        """
        if not mode.uses_layout:
            raise SynthesisError(
                "layout-oriented synthesis needs a layout-aware parasitic "
                "mode (LAYOUT_DIFFUSION or FULL)"
            )
        start = time.perf_counter()
        records: List[SynthesisRecord] = []
        feedback: Optional[ParasiticReport] = None
        sizing: Optional[SizingResult] = None
        converged = False

        for round_index in range(1, self.max_layout_calls + 1):
            sizing = self.plan.size(specs, mode, feedback)
            estimate = self.layout_tool(sizing, "estimate")
            if feedback is None:
                distance = float("inf")
            else:
                distance = estimate.report.distance(feedback)
            records.append(
                SynthesisRecord(
                    round_index=round_index,
                    sizing=sizing,
                    report=estimate.report,
                    distance=distance,
                )
            )
            previous = feedback
            feedback = estimate.report
            if previous is not None and distance <= self.convergence_tolerance:
                converged = True
                break

        assert sizing is not None and feedback is not None
        if not converged and len(records) >= self.max_layout_calls:
            # Accept the last round but flag non-convergence.
            converged = records[-1].distance <= 10.0 * self.convergence_tolerance

        layout = None
        if generate:
            layout = self.layout_tool(sizing, "generate")

        return SynthesisOutcome(
            sizing=sizing,
            feedback=feedback,
            layout_calls=len(records),
            records=records,
            layout=layout,
            elapsed=time.perf_counter() - start,
            converged=converged,
        )
