"""Traditional design flow baseline (paper Figure 1a).

Sizing with fixed assumptions, then the expensive loop: generate the
layout, extract it, simulate, and — when the extracted performance misses
the specifications — re-size with inflated targets to compensate, repeating
until the extracted circuit passes.  The layout-oriented flow replaces
these full generate/extract rounds with cheap parasitic-calculation calls;
the flow-comparison bench measures the difference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import OtaMetrics
from repro.core.cases import extract_and_measure
from repro.errors import SynthesisError
from repro.layout.ota import OtaLayoutRequest, OtaLayoutResult, generate_ota_layout
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology


@dataclass
class TraditionalIteration:
    """One generate-extract-evaluate-resize round."""

    index: int
    sizing: SizingResult
    extracted: OtaMetrics
    gbw_shortfall: float
    pm_shortfall: float


@dataclass
class TraditionalOutcome:
    """Result of the traditional flow."""

    sizing: SizingResult
    extracted: OtaMetrics
    layout: OtaLayoutResult
    iterations: List[TraditionalIteration] = field(default_factory=list)
    elapsed: float = 0.0
    converged: bool = True

    @property
    def full_layout_rounds(self) -> int:
        """Number of expensive generate+extract rounds performed."""
        return len(self.iterations)


class TraditionalFlow:
    """Figure 1(a): sizing -> layout -> extraction -> evaluation loop."""

    def __init__(
        self,
        technology: Technology,
        model_level: int = 1,
        aspect: Optional[float] = 1.0,
        max_rounds: int = 8,
        gbw_tolerance: float = 0.02,
        pm_tolerance: float = 1.0,
    ):
        technology.validate()
        self.technology = technology
        self.model_level = model_level
        self.aspect = aspect
        self.max_rounds = max_rounds
        self.gbw_tolerance = gbw_tolerance
        self.pm_tolerance = pm_tolerance

    def run(self, specs: OtaSpecs) -> TraditionalOutcome:
        """Iterate full layout rounds until the extracted circuit passes."""
        start = time.perf_counter()
        plan = FoldedCascodePlan(self.technology, self.model_level)
        # The sizer only ever sees the nominal (no-parasitics) netlist —
        # the defining limitation of the traditional flow.  Every missed
        # spec therefore needs a full generate+extract+resize round.
        target = OtaSpecs(
            vdd=specs.vdd,
            gbw=specs.gbw,
            phase_margin=specs.phase_margin,
            cload=specs.cload,
            input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
            vcm=specs.vcm,
        )

        iterations: List[TraditionalIteration] = []
        sizing: Optional[SizingResult] = None
        layout: Optional[OtaLayoutResult] = None
        extracted: Optional[OtaMetrics] = None
        converged = False

        for index in range(1, self.max_rounds + 1):
            sizing = plan.size(target, ParasiticMode.NONE)
            request = OtaLayoutRequest(
                technology=self.technology,
                sizes=sizing.sizes,
                currents=sizing.currents,
                aspect=self.aspect,
            )
            layout = generate_ota_layout(request, mode="generate")
            extracted = extract_and_measure(
                plan, sizing, specs, layout, self.technology
            )

            gbw_shortfall = (specs.gbw - extracted.gbw) / specs.gbw
            pm_shortfall = specs.phase_margin - extracted.phase_margin_deg
            iterations.append(
                TraditionalIteration(
                    index=index,
                    sizing=sizing,
                    extracted=extracted,
                    gbw_shortfall=gbw_shortfall,
                    pm_shortfall=pm_shortfall,
                )
            )
            if (
                gbw_shortfall <= self.gbw_tolerance
                and pm_shortfall <= self.pm_tolerance
            ):
                converged = True
                break

            # Compensation: inflate the sizing targets by the observed
            # shortfalls and try again (the classic manual recipe).
            if gbw_shortfall > self.gbw_tolerance:
                target.gbw *= 1.0 + 1.1 * gbw_shortfall
            if pm_shortfall > self.pm_tolerance:
                target.phase_margin = min(
                    88.0, target.phase_margin + 1.1 * pm_shortfall
                )

        if sizing is None or layout is None or extracted is None:
            raise SynthesisError("traditional flow produced no iterations")

        return TraditionalOutcome(
            sizing=sizing,
            extracted=extracted,
            layout=layout,
            iterations=iterations,
            elapsed=time.perf_counter() - start,
            converged=converged,
        )
