"""The paper's primary contribution: layout-oriented synthesis.

* :mod:`repro.core.synthesis` — the coupled sizing/layout loop of
  Figure 1(b): size, call the layout tool in parasitic-calculation mode,
  re-size with the reported parasitics, repeat until the parasitics stop
  changing, then generate the physical layout;
* :mod:`repro.core.traditional` — the Figure 1(a) baseline: size with
  assumptions, generate, extract, evaluate, re-size, repeat;
* :mod:`repro.core.cases` — the four parasitic-awareness cases of Table 1,
  each measured twice (synthesized netlist and extracted layout);
* :mod:`repro.core.report` — Table-1-style formatting.
"""

from repro.core.synthesis import (
    LayoutOrientedSynthesizer,
    SynthesisOutcome,
    SynthesisRecord,
)
from repro.core.traditional import TraditionalFlow, TraditionalOutcome
from repro.core.cases import CaseResult, extract_and_measure, run_case
from repro.core.report import format_table1, metrics_rows

__all__ = [
    "CaseResult",
    "LayoutOrientedSynthesizer",
    "SynthesisOutcome",
    "SynthesisRecord",
    "TraditionalFlow",
    "TraditionalOutcome",
    "extract_and_measure",
    "format_table1",
    "metrics_rows",
    "run_case",
]
