"""Switched-capacitor system synthesis (the paper's future work).

"Future work includes synthesis of larger systems as switched capacitor
filters and A/D converters using the same methodology."  This module takes
the first concrete step: it translates system-level switched-capacitor
specifications into the OTA specifications the existing flow consumes, and
drives the layout-oriented synthesizer per stage.

The settling model is the standard single-pole one: during the
integration phase (half a clock period) the amplifier must settle a
full-scale step to half an LSB — a linear part governed by the closed-loop
bandwidth ``beta * GBW`` and a slewing part governed by the tail current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from repro.errors import SizingError
from repro.sizing.specs import OtaSpecs, ParasiticMode


@dataclass
class ScIntegratorSpecs:
    """System-level specification of one switched-capacitor integrator."""

    clock: float
    """Sampling clock, Hz."""
    resolution_bits: int
    """Settling accuracy target: half an LSB at this resolution."""
    sampling_cap: float
    """Cs, F."""
    integration_cap: float
    """Ci, F."""
    load_cap: float = 0.0
    """Additional fixed load on the OTA output, F."""
    full_scale_step: float = 1.0
    """Worst-case output step to settle, V."""
    slew_fraction: float = 0.25
    """Fraction of the settling window budgeted to slewing."""

    def validate(self) -> None:
        if self.clock <= 0.0:
            raise SizingError("clock must be positive")
        if self.resolution_bits < 1:
            raise SizingError("resolution must be at least 1 bit")
        if self.sampling_cap <= 0.0 or self.integration_cap <= 0.0:
            raise SizingError("capacitor values must be positive")
        if not 0.0 < self.slew_fraction < 1.0:
            raise SizingError("slew fraction must be in (0, 1)")

    @property
    def feedback_factor(self) -> float:
        """beta = Ci / (Ci + Cs) during integration."""
        return self.integration_cap / (self.integration_cap + self.sampling_cap)

    @property
    def effective_load(self) -> float:
        """Load seen by the OTA while integrating: CL + Cs in series Ci."""
        series = (
            self.sampling_cap * self.integration_cap
            / (self.sampling_cap + self.integration_cap)
        )
        return self.load_cap + series

    @property
    def settling_window(self) -> float:
        """Half a clock period, s."""
        return 0.5 / self.clock

    def required_time_constants(self) -> float:
        """Linear-settling taus for half-LSB accuracy: (N+1) ln 2."""
        return (self.resolution_bits + 1) * math.log(2.0)

    def required_gbw(self) -> float:
        """Unity-gain bandwidth the OTA needs, Hz."""
        linear_window = (1.0 - self.slew_fraction) * self.settling_window
        omega = self.required_time_constants() / (
            self.feedback_factor * linear_window
        )
        return omega / (2.0 * math.pi)

    def required_slew_rate(self) -> float:
        """Slew rate to cross the full-scale step in the slewing budget."""
        return self.full_scale_step / (
            self.slew_fraction * self.settling_window
        )

    def required_dc_gain(self) -> float:
        """Linear gain bound: static error below half an LSB.

        ``1/(A beta) < 0.5 LSB / Vfs``  =>  ``A > 2^(N+1) / beta``.
        """
        return 2.0 ** (self.resolution_bits + 1) / self.feedback_factor

    def ota_specs(
        self,
        vdd: float = 3.3,
        phase_margin: float = 70.0,
        margin: float = 1.1,
    ) -> OtaSpecs:
        """The OTA specification block for the existing synthesis flow.

        ``margin`` over-designs GBW slightly for the switch resistance and
        parasitics the system model ignores; SC stages want extra phase
        margin, hence the 70-degree default.
        """
        self.validate()
        scale = vdd / 3.3
        return OtaSpecs(
            vdd=vdd,
            gbw=margin * self.required_gbw(),
            phase_margin=phase_margin,
            cload=self.effective_load,
            input_cm_range=(0.8 * scale, 1.8 * scale),
            output_range=(0.5 * scale, 2.8 * scale),
            slew_rate=margin * self.required_slew_rate(),
        )


@dataclass
class ScSynthesisOutcome:
    """An SC-integrator stage synthesized through the coupled flow."""

    specs: ScIntegratorSpecs
    ota_specs: OtaSpecs
    synthesis: object
    """The :class:`~repro.core.synthesis.SynthesisOutcome`."""
    slew_ok: bool
    gain_ok: bool

    @property
    def passed(self) -> bool:
        return (
            self.synthesis.converged
            and self.slew_ok
            and self.gain_ok
        )


def synthesize_sc_integrator(
    technology,
    specs: ScIntegratorSpecs,
    vdd: float = 3.3,
    mode: ParasiticMode = ParasiticMode.FULL,
    generate: bool = False,
    synthesizer=None,
) -> ScSynthesisOutcome:
    """Drive the layout-oriented flow from SC system specifications.

    Checks the two requirements the GBW-driven sizing does not directly
    enforce — slew rate and static-gain accuracy — against the synthesized
    amplifier, so the caller knows whether the stage meets the system
    target or needs a bigger tail current.
    """
    from repro.core.synthesis import LayoutOrientedSynthesizer

    specs.validate()
    ota_specs = specs.ota_specs(vdd=vdd)
    if synthesizer is None:
        synthesizer = LayoutOrientedSynthesizer(technology)
    outcome = synthesizer.run(ota_specs, mode=mode, generate=generate)
    metrics = outcome.sizing.predicted
    slew_ok = metrics.slew_rate >= specs.required_slew_rate()
    gain_ok = 10.0 ** (metrics.dc_gain_db / 20.0) >= specs.required_dc_gain()
    return ScSynthesisOutcome(
        specs=specs,
        ota_specs=ota_specs,
        synthesis=outcome,
        slew_ok=slew_ok,
        gain_ok=gain_ok,
    )
