"""The four parasitic-awareness cases of Table 1.

Each case sizes the same folded-cascode OTA for the same specifications
with a different amount of layout knowledge, then (independently) generates
the layout, extracts it and simulates the extracted netlist — producing
the "value(value-in-brackets)" pairs of the paper's Table 1.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Optional

from repro.analysis.metrics import OtaMetrics, measure_ota
from repro.layout.extraction import annotate_circuit, extract_cell
from repro.layout.ota import OtaLayoutRequest, OtaLayoutResult, generate_ota_layout
from repro.circuit.testbench import OtaTestbench
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.runtime.artifacts import canonical_tokens as _tokens
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology


@dataclass
class CaseResult:
    """One Table-1 column: synthesized and extracted measurements."""

    mode: ParasiticMode
    sizing: SizingResult
    synthesized: OtaMetrics
    extracted: OtaMetrics
    layout: OtaLayoutResult
    layout_calls: int
    elapsed: float

    @property
    def label(self) -> str:
        return f"Case ({self.mode.value})"

    def fingerprint(self) -> str:
        """Stable content hash of the deterministic result payload.

        Covers everything a Table-1 column is built from — the mode,
        the sizing, both measurement sets, the layout report and fold
        configuration — and deliberately excludes wall-clock ``elapsed``
        and the geometry cell object, so identical designs hash
        identically no matter how long the run took or which process
        produced it.  The batch driver's serial-vs-parallel determinism
        check compares these.
        """
        payload = (
            self.mode,
            self.layout_calls,
            self.sizing,
            self.synthesized,
            self.extracted,
            self.layout.fold_config,
            self.layout.report,
        )
        digest = hashlib.sha256("\x1f".join(_tokens(payload)).encode())
        return digest.hexdigest()[:16]


def extract_and_measure(
    plan: FoldedCascodePlan,
    sizing: SizingResult,
    specs: OtaSpecs,
    layout: OtaLayoutResult,
    technology: Technology,
) -> OtaMetrics:
    """Generate-extract-simulate: the bracketed values of Table 1.

    The extracted netlist uses the *drawn* device widths (grid-snapped by
    the motif generator — the mechanism behind the paper's post-folding
    offset remark) and the extractor's own diffusion/wire/coupling/well
    capacitances.
    """
    assert layout.cell is not None, "extraction needs a generated layout"
    extracted_parasitics = extract_cell(layout.cell, technology)

    # Base circuit with no sizing-side parasitics: everything measured on
    # this netlist comes from the extractor.
    bench = plan.build_testbench(sizing, specs, mode=ParasiticMode.NONE)
    circuit = bench.circuit
    for mos in circuit.mos_devices:
        if mos.name in layout.report.devices:
            info = layout.report.devices[mos.name]
            mos.w = info.actual_width
            mos.nf = info.nf
    annotated = annotate_circuit(circuit, extracted_parasitics, technology)
    extracted_bench = OtaTestbench(
        circuit=annotated,
        source_pos=bench.source_pos,
        source_neg=bench.source_neg,
        input_neg_net=bench.input_neg_net,
        output_net=bench.output_net,
        supply_sources=bench.supply_sources,
        slew_devices=bench.slew_devices,
    )
    return measure_ota(extracted_bench)


def run_case(
    technology: Technology,
    specs: OtaSpecs,
    mode: ParasiticMode,
    model_level: int = 1,
    aspect: Optional[float] = 1.0,
    plan: Optional[FoldedCascodePlan] = None,
) -> CaseResult:
    """Size, lay out, extract and measure one Table-1 case."""
    start = time.perf_counter()
    plan = plan or FoldedCascodePlan(technology, model_level)

    if mode.uses_layout:
        synthesizer = LayoutOrientedSynthesizer(
            technology, model_level=model_level, aspect=aspect, plan=plan
        )
        outcome = synthesizer.run(specs, mode=mode, generate=True)
        sizing = outcome.sizing
        layout = outcome.layout
        layout_calls = outcome.layout_calls
        assert layout is not None
    else:
        sizing = plan.size(specs, mode)
        request = OtaLayoutRequest(
            technology=technology,
            sizes=sizing.sizes,
            currents=sizing.currents,
            aspect=aspect,
        )
        layout = generate_ota_layout(request, mode="generate")
        layout_calls = 0

    synthesized = sizing.predicted
    assert synthesized is not None
    extracted = extract_and_measure(plan, sizing, specs, layout, technology)

    return CaseResult(
        mode=mode,
        sizing=sizing,
        synthesized=synthesized,
        extracted=extracted,
        layout=layout,
        layout_calls=layout_calls,
        elapsed=time.perf_counter() - start,
    )
