"""Source/drain junction (diffusion) capacitance model.

The diffusion-to-bulk capacitance is the parasitic the paper's folding
analysis targets (Figure 2): sharing diffusions between folds shrinks the
effective diffusion area.  The layout tool reports exact per-terminal areas
and perimeters; before the first layout call, the sizer uses the default
single-fold geometry built here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.process import MosParams


@dataclass(frozen=True)
class DiffusionGeometry:
    """Per-terminal diffusion geometry of one MOS device.

    ``ad``/``as_`` are areas in m^2; ``pd``/``ps`` are perimeters in m.
    Perimeters exclude the gate edge, following the usual extraction
    convention (the gate-side junction is accounted in the channel).
    """

    ad: float
    pd: float
    as_: float
    ps: float

    def __deepcopy__(self, memo: object) -> "DiffusionGeometry":
        # Frozen (immutable): cloned circuits share one instance.
        return self

    def scaled(self, factor: float) -> "DiffusionGeometry":
        """Uniformly scale all areas and perimeters (e.g. for mismatch)."""
        return DiffusionGeometry(
            ad=self.ad * factor,
            pd=self.pd * factor,
            as_=self.as_ * factor,
            ps=self.ps * factor,
        )

    @staticmethod
    def single_fold(width: float, ldif: float) -> "DiffusionGeometry":
        """Geometry of an unfolded transistor with full-width diffusions.

        Both source and drain are rectangles ``width x ldif``; the exposed
        perimeter is the three non-gate edges.
        """
        area = width * ldif
        perimeter = width + 2.0 * ldif
        return DiffusionGeometry(ad=area, pd=perimeter, as_=area, ps=perimeter)

    @staticmethod
    def from_effective_widths(
        drain_weff: float, source_weff: float, ldif: float
    ) -> "DiffusionGeometry":
        """Geometry from effective diffusion widths (paper's F*W model).

        The paper models folding by an effective diffusion width
        ``W_eff = F * W``; area and perimeter follow the same single-strip
        shape with the reduced width.
        """
        return DiffusionGeometry(
            ad=drain_weff * ldif,
            pd=drain_weff + 2.0 * ldif,
            as_=source_weff * ldif,
            ps=source_weff + 2.0 * ldif,
        )


def junction_capacitance(
    params: MosParams, area: float, perimeter: float, reverse_bias: float
) -> float:
    """Bias-dependent junction capacitance of one diffusion, F.

    Standard SPICE model: ``C = CJ*A/(1+V/PB)^MJ + CJSW*P/(1+V/PB)^MJSW``.
    For (unusual) forward bias the expression is linearised at V=0 to keep
    the capacitance finite and the solver stable.
    """
    if area < 0.0 or perimeter < 0.0:
        raise ValueError("junction area and perimeter must be non-negative")
    voltage = reverse_bias
    if voltage >= 0.0:
        bottom = params.cj * area / (1.0 + voltage / params.pb) ** params.mj
        side = params.cjsw * perimeter / (1.0 + voltage / params.pb) ** params.mjsw
    else:
        # Linear extrapolation of C(V) below zero bias.
        bottom = params.cj * area * (1.0 - params.mj * voltage / params.pb)
        side = params.cjsw * perimeter * (1.0 - params.mjsw * voltage / params.pb)
    return bottom + side
