"""MOS transistor models.

The same model objects serve the circuit simulator, the sizing tool and the
layout parasitic estimator.  Sharing one model implementation across tools
reproduces the paper's accuracy argument (section 4): sizing-predicted and
simulated operating points agree by construction.

Two model levels are provided:

* :class:`~repro.mos.level1.Level1Model` — the classic Shichman-Hodges
  square-law model with body effect, channel-length modulation and a smooth
  (C1-continuous) weak-inversion tail for solver robustness.
* :class:`~repro.mos.level3.Level3Model` — adds vertical-field mobility
  degradation and velocity saturation, standing in for the paper's
  BSIM3v3/MM9 "advanced" models.
"""

from repro.mos.model import MosModel, OperatingPoint, Region
from repro.mos.junction import DiffusionGeometry, junction_capacitance
from repro.mos.level1 import Level1Model
from repro.mos.level3 import Level3Model
from repro.mos.solver import vgs_for_current, width_for_current

from repro.technology.process import MosParams


def make_model(params: MosParams, level: int = 1) -> MosModel:
    """Build a model of the requested SPICE level for a parameter set."""
    if level == 1:
        return Level1Model(params)
    if level == 3:
        return Level3Model(params)
    raise ValueError(f"unsupported MOS model level {level}; use 1 or 3")


__all__ = [
    "DiffusionGeometry",
    "Level1Model",
    "Level3Model",
    "MosModel",
    "OperatingPoint",
    "Region",
    "junction_capacitance",
    "make_model",
    "vgs_for_current",
    "width_for_current",
]
