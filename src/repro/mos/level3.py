"""Level-3-style short-channel model.

Adds two first-order short-channel effects on top of the square law:

* vertical-field mobility degradation: ``mu = u0 / (1 + theta * Veff)``;
* velocity saturation, folded into an equivalent degradation term
  ``u0 / (2 vmax L)`` (the classic combined-degradation approximation).

Both appear as one effective coefficient ``theta_eff(L)``, so

``Idsat = 0.5 kp (W/L) Veff^2 / (1 + theta_eff Veff) * (1 + lam Vds)``.

This captures what matters to sizing accuracy: at a given overdrive a short
device delivers less current (and less gm) than the square law predicts, so
widths sized with level 3 come out larger.  It stands in for the paper's
BSIM3v3/MM9 models.
"""

from __future__ import annotations

from repro.mos.model import MosModel
from repro.technology.process import MosParams
from repro.units import ROOM_TEMPERATURE


class Level3Model(MosModel):
    """Square law with combined mobility/velocity degradation."""

    level = 3

    def __init__(self, params: MosParams, temperature: float = ROOM_TEMPERATURE):
        super().__init__(params, temperature)

    def theta_eff(self, length: float) -> float:
        """Combined degradation coefficient at channel length ``length``."""
        theta = self.params.theta
        if self.params.vmax > 0.0:
            theta += self.params.u0 / (2.0 * self.params.vmax * length)
        return theta

    def _saturation_current_factor(self, veff: float, length: float) -> float:
        return veff * veff / (1.0 + self.theta_eff(length) * veff)

    def _saturation_current_factor_derivative(
        self, veff: float, length: float
    ) -> float:
        theta = self.theta_eff(length)
        denom = 1.0 + theta * veff
        return veff * (2.0 + theta * veff) / (denom * denom)

    def _triode_degradation(self, veff: float, length: float) -> float:
        return 1.0 + self.theta_eff(length) * veff

    def _triode_degradation_derivative(self, veff: float, length: float) -> float:
        return self.theta_eff(length)
