"""SPICE level-1 (Shichman-Hodges) model.

Square-law saturation current with channel-length modulation; the weak
inversion tail and body effect come from the :class:`MosModel` base.
"""

from __future__ import annotations

from repro.mos.model import MosModel


class Level1Model(MosModel):
    """Classic square-law model: ``Idsat = 0.5 kp (W/L) Veff^2 (1+lam Vds)``."""

    level = 1

    def _saturation_current_factor(self, veff: float, length: float) -> float:
        return veff * veff

    def _saturation_current_factor_derivative(
        self, veff: float, length: float
    ) -> float:
        return 2.0 * veff
