"""Inverse model solvers used by the sizing tool.

COMDIAC-style sizing fixes the operating point first (currents and effective
gate voltages), then computes geometries: these helpers invert the device
model for that flow.
"""

from __future__ import annotations

from repro.errors import ModelError, SizingError
from repro.mos.model import MosModel


def width_for_current(
    model: MosModel,
    current: float,
    length: float,
    veff: float,
    vds: float | None = None,
    vsb: float = 0.0,
) -> float:
    """Width that carries ``current`` at overdrive ``veff`` in saturation.

    Analytic inversion of ``Id = 0.5 kp (W/L) f(veff) (1 + lam vds)``.
    """
    if current <= 0.0:
        raise SizingError("width_for_current needs a positive drain current")
    if veff <= 0.0:
        raise SizingError("width_for_current needs a positive overdrive")
    if length <= 0.0:
        raise SizingError("width_for_current needs a positive length")
    if vds is None:
        vds = veff + 0.3
    if vds < veff:
        raise SizingError(
            f"requested vds={vds:.3f} V puts the device in triode "
            f"(vdsat={veff:.3f} V)"
        )
    factor = model._saturation_current_factor(veff, length)
    lam = model.params.lambda_l / length
    denominator = 0.5 * model.params.kp * factor * (1.0 + lam * vds)
    if denominator <= 0.0:
        raise SizingError("degenerate model parameters in width_for_current")
    return current * length / denominator


def vgs_for_current(
    model: MosModel,
    current: float,
    width: float,
    length: float,
    vds: float | None = None,
    vsb: float = 0.0,
    tolerance: float = 1e-12,
    max_iterations: int = 100,
) -> float:
    """Gate-source magnitude that makes the device carry ``current``.

    Newton iteration on the full model (valid through weak inversion), used
    to back out bias voltages once geometries are frozen.
    """
    if current <= 0.0:
        raise SizingError("vgs_for_current needs a positive drain current")
    vth = model.threshold(vsb)
    # Square-law seed; clamped to weak inversion onset if tiny.
    factor = 0.5 * model.params.kp * width / length
    seed_veff = (current / factor) ** 0.5 if factor > 0.0 else 0.1
    vgs = vth + max(seed_veff, 0.5 * model._weak_inversion_onset(vsb))
    if vds is None:
        vds_fixed = None
    else:
        vds_fixed = vds
    def drain_current(candidate: float) -> float:
        vds_eval = (
            vds_fixed if vds_fixed is not None
            else max(candidate - vth, 0.1) + 0.3
        )
        id_value, _gm, _gds, _gmb, _region = model.evaluate(
            width, length, candidate, vds_eval, vsb
        )
        return id_value

    for _ in range(max_iterations):
        vds_eval = vds_fixed if vds_fixed is not None else max(vgs - vth, 0.1) + 0.3
        id_value, gm, _gds, _gmb, _region = model.evaluate(
            width, length, vgs, vds_eval, vsb
        )
        error = id_value - current
        if abs(error) <= tolerance + 1e-9 * current:
            return vgs
        if gm <= 0.0:
            gm = factor * 0.05  # crude fallback slope in deep cutoff
        step = error / gm
        # Damp large steps to stay within the model's smooth domain.
        step = max(min(step, 0.5), -0.5)
        vgs -= step

    # Newton stalled (skewed-corner parameters can put the seed in a
    # region where the damped steps oscillate).  Id is monotone in vgs, so
    # bracket the target and bisect — slower but unconditionally
    # convergent within the bracket.
    lo, hi = vgs, vgs
    for _ in range(80):
        if drain_current(lo) < current:
            break
        lo -= 0.5
    for _ in range(80):
        if drain_current(hi) > current:
            break
        hi += 0.5
    if drain_current(lo) < current < drain_current(hi):
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            id_mid = drain_current(mid)
            if abs(id_mid - current) <= tolerance + 1e-9 * current:
                return mid
            if id_mid < current:
                lo = mid
            else:
                hi = mid

    raise ModelError(
        f"vgs_for_current did not converge for Id={current:.3e} A "
        f"(W={width:.3e}, L={length:.3e})"
    )
