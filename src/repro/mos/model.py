"""MOS model base class and operating-point record.

Models work in *forward NMOS convention*: ``vgs``, ``vds`` (>= 0) and
``vsb`` (reverse body bias, >= 0 normally) are magnitudes after the circuit
layer has applied the polarity sign and, when needed, swapped drain and
source.  This keeps a single implementation for both device polarities and
both conduction directions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.mos.junction import DiffusionGeometry, junction_capacitance
from repro.technology.process import MosParams
from repro.units import BOLTZMANN, ROOM_TEMPERATURE, thermal_voltage


class Region(Enum):
    """DC operating region."""

    CUTOFF = "cutoff"
    """Weak inversion / subthreshold."""
    TRIODE = "triode"
    SATURATION = "saturation"


@dataclass
class OperatingPoint:
    """Full DC + small-signal description of one biased device.

    All quantities in forward convention (positive for a conducting
    device); the circuit layer re-applies signs when stamping.
    """

    # Bias ---------------------------------------------------------------
    id: float
    vgs: float
    vds: float
    vsb: float
    vth: float
    veff: float
    vdsat: float
    region: Region
    # Geometry -------------------------------------------------------------
    width: float
    length: float
    # Small-signal -----------------------------------------------------------
    gm: float
    gds: float
    gmb: float
    # Capacitances -------------------------------------------------------------
    cgs: float
    cgd: float
    cgb: float
    cdb: float
    csb: float

    @property
    def gm_over_id(self) -> float:
        """Transconductance efficiency, 1/V."""
        if self.id == 0.0:
            return 0.0
        return self.gm / abs(self.id)

    @property
    def intrinsic_gain(self) -> float:
        """Self gain gm/gds."""
        if self.gds == 0.0:
            return math.inf
        return self.gm / self.gds

    @property
    def ro(self) -> float:
        """Small-signal output resistance 1/gds, ohm."""
        if self.gds == 0.0:
            return math.inf
        return 1.0 / self.gds

    @property
    def total_gate_capacitance(self) -> float:
        return self.cgs + self.cgd + self.cgb


class MosModel(ABC):
    """Common behaviour of the level-1 and level-3 models."""

    def __init__(self, params: MosParams, temperature: float = ROOM_TEMPERATURE):
        params.validate()
        self.params = params
        self.temperature = temperature
        self.vt = thermal_voltage(temperature)

    # -- DC core (implemented by subclasses) --------------------------------

    @abstractmethod
    def _saturation_current_factor(self, veff: float, length: float) -> float:
        """Return f(veff) such that Idsat = 0.5*kp*(W/L)*f(veff).

        Level 1: ``f = veff^2``.  Level 3 folds mobility degradation and
        velocity saturation into ``f``.
        """

    @abstractmethod
    def _saturation_current_factor_derivative(
        self, veff: float, length: float
    ) -> float:
        """d f / d veff, used for gm."""

    # -- Threshold and slope factor -----------------------------------------

    def threshold(self, vsb: float) -> float:
        """Body-effect-adjusted threshold magnitude at reverse bias ``vsb``."""
        phi = self.params.phi
        arg = phi + vsb
        if arg < 0.01:
            # Strong forward body bias: clamp to keep sqrt real; devices are
            # never intentionally biased here.
            arg = 0.01
        vto_mag = self.params.sign * self.params.vto
        return vto_mag + self.params.gamma * (math.sqrt(arg) - math.sqrt(phi))

    def slope_factor(self, vsb: float) -> float:
        """Subthreshold slope factor n = 1 + gamma / (2 sqrt(phi + vsb))."""
        arg = max(self.params.phi + vsb, 0.01)
        return 1.0 + self.params.gamma / (2.0 * math.sqrt(arg))

    def _weak_inversion_onset(self, vsb: float) -> float:
        """Effective overdrive below which the exponential tail applies.

        Chosen as ``2 n Vt`` so current *and* transconductance are continuous
        at the transition (value and slope of the square law match the
        exponential there).
        """
        return 2.0 * self.slope_factor(vsb) * self.vt

    # -- Current and small-signal parameters ---------------------------------

    def evaluate(
        self, width: float, length: float, vgs: float, vds: float, vsb: float
    ) -> Tuple[float, float, float, float, Region]:
        """Return ``(id, gm, gds, gmb, region)`` in forward convention.

        ``vds`` must be >= 0 (callers swap terminals first).
        """
        if width <= 0.0 or length <= 0.0:
            raise ModelError(
                f"{self.params.name}: device geometry must be positive "
                f"(W={width}, L={length})"
            )
        if vds < 0.0:
            raise ModelError("evaluate() requires vds >= 0; swap terminals first")
        params = self.params
        vth = self.threshold(vsb)
        veff = vgs - vth
        n = self.slope_factor(vsb)
        veff_t = self._weak_inversion_onset(vsb)
        beta = params.kp * width / length
        lam = params.lambda_l / length

        if veff < veff_t:
            region = Region.CUTOFF
            # Exponential matched in value and slope to the strong-inversion
            # expression at veff = veff_t.
            f_t = self._saturation_current_factor(veff_t, length)
            i_t = 0.5 * beta * f_t
            exp_arg = (veff - veff_t) / (n * self.vt)
            if exp_arg < -80.0:
                exp_term = 0.0
            else:
                exp_term = math.exp(exp_arg)
            sat_shape = 1.0 - math.exp(-vds / self.vt) if vds < 5 * self.vt else 1.0
            id_core = i_t * exp_term * sat_shape
            current = id_core * (1.0 + lam * vds)
            gm = current / (n * self.vt) if exp_term > 0.0 else 0.0
            # d(current)/d(vds): CLM term plus the (1-exp) shape term.
            gds = id_core * lam
            if vds < 5 * self.vt:
                gds += (
                    i_t * exp_term * math.exp(-vds / self.vt) / self.vt
                ) * (1.0 + lam * vds)
        elif vds >= veff:
            region = Region.SATURATION
            f = self._saturation_current_factor(veff, length)
            df = self._saturation_current_factor_derivative(veff, length)
            current = 0.5 * beta * f * (1.0 + lam * vds)
            gm = 0.5 * beta * df * (1.0 + lam * vds)
            gds = 0.5 * beta * f * lam
        else:
            region = Region.TRIODE
            # Degradation factor carried over from the saturation expression
            # so the two regions meet continuously at vds = veff.
            degradation = self._triode_degradation(veff, length)
            id_core = beta * (veff - 0.5 * vds) * vds / degradation
            current = id_core * (1.0 + lam * vds)
            gm = beta * vds * (1.0 + lam * vds) / degradation
            gm -= id_core * (1.0 + lam * vds) * self._triode_degradation_derivative(
                veff, length
            ) / degradation
            gds = (
                beta * (veff - vds) / degradation * (1.0 + lam * vds)
                + id_core * lam
            )

        gmb = gm * self._body_transconductance_ratio(vsb)
        return current, gm, gds, gmb, region

    def evaluate_batch(self, width, length, vgs, vds, vsb):
        """Vectorized :meth:`evaluate` over numpy arrays of devices.

        Mirrors the scalar implementation branch-for-branch (weak
        inversion, saturation, triode selected per element with masks) so
        the compiled-stamp engine reproduces the legacy per-device path to
        floating-point round-off.  Returns ``(id, gm, gds, gmb, region)``
        arrays where ``region`` holds :class:`Region` codes
        (0 = cutoff, 1 = triode, 2 = saturation).

        ``vds`` must be element-wise >= 0 (callers swap terminals first).
        The subclass hooks (``_saturation_current_factor`` and friends) are
        pure arithmetic in both provided models, so they broadcast as-is.
        """
        width = np.asarray(width, dtype=float)
        length = np.asarray(length, dtype=float)
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vsb = np.asarray(vsb, dtype=float)
        if np.any(width <= 0.0) or np.any(length <= 0.0):
            raise ModelError(
                f"{self.params.name}: device geometry must be positive"
            )
        if np.any(vds < 0.0):
            raise ModelError("evaluate_batch() requires vds >= 0")
        params = self.params

        arg = np.maximum(params.phi + vsb, 0.01)
        sqrt_arg = np.sqrt(arg)
        vth = params.sign * params.vto + params.gamma * (
            sqrt_arg - np.sqrt(params.phi)
        )
        n = 1.0 + params.gamma / (2.0 * sqrt_arg)
        veff = vgs - vth
        veff_t = 2.0 * n * self.vt
        beta = params.kp * width / length
        lam = params.lambda_l / length

        weak = veff < veff_t
        saturated = ~weak & (vds >= veff)
        triode = ~weak & ~saturated

        # Weak inversion ------------------------------------------------------
        f_t = self._saturation_current_factor(veff_t, length)
        i_t = 0.5 * beta * f_t
        exp_arg = np.where(weak, (veff - veff_t) / (n * self.vt), -np.inf)
        exp_term = np.where(exp_arg < -80.0, 0.0, np.exp(exp_arg))
        shaped = vds < 5.0 * self.vt
        decay = np.exp(np.where(shaped, -vds / self.vt, 0.0))
        sat_shape = np.where(shaped, 1.0 - decay, 1.0)
        id_core_w = i_t * exp_term * sat_shape
        clm = 1.0 + lam * vds
        current_w = id_core_w * clm
        gm_w = np.where(exp_term > 0.0, current_w / (n * self.vt), 0.0)
        gds_w = id_core_w * lam + np.where(
            shaped, (i_t * exp_term * decay / self.vt) * clm, 0.0
        )

        # Saturation ----------------------------------------------------------
        f = self._saturation_current_factor(veff, length)
        df = self._saturation_current_factor_derivative(veff, length)
        current_s = 0.5 * beta * f * clm
        gm_s = 0.5 * beta * df * clm
        gds_s = 0.5 * beta * f * lam

        # Triode --------------------------------------------------------------
        # Scalars (level 1 returns plain 1.0 / 0.0) broadcast in the
        # arithmetic below without materialising full arrays.
        degradation = self._triode_degradation(veff, length)
        d_degradation = self._triode_degradation_derivative(veff, length)
        id_core_t = beta * (veff - 0.5 * vds) * vds / degradation
        current_t = id_core_t * clm
        gm_t = (
            beta * vds * clm / degradation
            - id_core_t * clm * d_degradation / degradation
        )
        gds_t = beta * (veff - vds) / degradation * clm + id_core_t * lam

        current = np.where(weak, current_w, np.where(saturated, current_s, current_t))
        gm = np.where(weak, gm_w, np.where(saturated, gm_s, gm_t))
        gds = np.where(weak, gds_w, np.where(saturated, gds_s, gds_t))
        gmb = gm * (params.gamma / (2.0 * sqrt_arg))
        region = np.where(weak, 0, np.where(triode, 1, 2))
        return current, gm, gds, gmb, region

    def _triode_degradation(self, veff: float, length: float) -> float:
        """Mobility degradation factor used in triode; 1.0 for level 1."""
        return 1.0

    def _triode_degradation_derivative(self, veff: float, length: float) -> float:
        """d(degradation)/d(veff) / 1; 0 for level 1."""
        return 0.0

    def _body_transconductance_ratio(self, vsb: float) -> float:
        """gmb/gm = gamma / (2 sqrt(phi + vsb))."""
        arg = max(self.params.phi + vsb, 0.01)
        return self.params.gamma / (2.0 * math.sqrt(arg))

    # -- Capacitances -----------------------------------------------------------

    def gate_capacitances(
        self, width: float, length: float, region: Region
    ) -> Tuple[float, float, float]:
        """Meyer gate capacitances ``(cgs, cgd, cgb)`` including overlaps."""
        params = self.params
        c_channel = params.cox * width * length
        c_ov_s = params.cgso * width
        c_ov_d = params.cgdo * width
        c_ov_b = params.cgbo * length
        if region is Region.SATURATION:
            return (2.0 / 3.0) * c_channel + c_ov_s, c_ov_d, c_ov_b
        if region is Region.TRIODE:
            return 0.5 * c_channel + c_ov_s, 0.5 * c_channel + c_ov_d, c_ov_b
        # Cutoff / weak inversion: channel charge couples to the bulk.
        return c_ov_s, c_ov_d, c_channel + c_ov_b

    def operating_point(
        self,
        width: float,
        length: float,
        vgs: float,
        vds: float,
        vsb: float,
        geometry: Optional[DiffusionGeometry] = None,
    ) -> OperatingPoint:
        """Full operating point including capacitances.

        ``geometry`` defaults to an unfolded device with the technology-rule
        diffusion extension encoded in the parameter set's caller; here a
        conservative ``ldif = 4*length`` placeholder is used only if nothing
        better is supplied.
        """
        current, gm, gds, gmb, region = self.evaluate(width, length, vgs, vds, vsb)
        cgs, cgd, cgb = self.gate_capacitances(width, length, region)
        if geometry is None:
            geometry = DiffusionGeometry.single_fold(width, 4.0 * length)
        vdb = vds + vsb
        cdb = junction_capacitance(self.params, geometry.ad, geometry.pd, vdb)
        csb = junction_capacitance(self.params, geometry.as_, geometry.ps, vsb)
        vth = self.threshold(vsb)
        return OperatingPoint(
            id=current,
            vgs=vgs,
            vds=vds,
            vsb=vsb,
            vth=vth,
            veff=vgs - vth,
            vdsat=max(vgs - vth, 0.0),
            region=region,
            width=width,
            length=length,
            gm=gm,
            gds=gds,
            gmb=gmb,
            cgs=cgs,
            cgd=cgd,
            cgb=cgb,
            cdb=cdb,
            csb=csb,
        )

    def bias_saturated(
        self,
        width: float,
        length: float,
        veff: float,
        vds: Optional[float] = None,
        vsb: float = 0.0,
        geometry: Optional[DiffusionGeometry] = None,
    ) -> OperatingPoint:
        """Operating point at a given overdrive, guaranteed saturated.

        ``vds`` defaults to ``veff + 0.3 V`` which keeps the device safely
        in saturation; this is the sizing tool's workhorse entry point.
        """
        if veff <= 0.0:
            raise ModelError("bias_saturated needs a positive overdrive")
        vth = self.threshold(vsb)
        vgs = vth + veff
        if vds is None:
            vds = veff + 0.3
        return self.operating_point(width, length, vgs, vds, vsb, geometry)

    # -- Noise ---------------------------------------------------------------------

    def thermal_noise_current_psd(self, op: OperatingPoint) -> float:
        """Channel thermal noise PSD, A^2/Hz (4kT * 2/3 * gm in saturation)."""
        gamma_noise = 2.0 / 3.0 if op.region is Region.SATURATION else 1.0
        return 4.0 * BOLTZMANN * self.temperature * gamma_noise * max(op.gm, 0.0)

    def flicker_noise_current_psd(self, op: OperatingPoint, frequency: float) -> float:
        """Flicker noise PSD at ``frequency``, A^2/Hz.

        SPICE2 form: ``KF * Id^AF / (Cox * Leff^2 * f)``.
        """
        if frequency <= 0.0:
            raise ValueError("flicker noise needs a positive frequency")
        params = self.params
        if op.id <= 0.0:
            return 0.0
        return (
            params.kf
            * abs(op.id) ** params.af
            / (params.cox * op.length**2 * frequency)
        )

    def flicker_corner(self, op: OperatingPoint) -> float:
        """Frequency where flicker equals thermal noise, Hz."""
        thermal = self.thermal_noise_current_psd(op)
        if thermal <= 0.0:
            return 0.0
        return self.flicker_noise_current_psd(op, 1.0) / thermal
