"""Knowledge-based circuit sizing (the COMDIAC substrate).

Design plans encode per-topology sizing knowledge: the DC operating point
(overdrives, bias voltages) is fixed first from the voltage-range
specifications, currents are estimated heuristically from the
gain-bandwidth target, geometries follow by model inversion, and monotonic
iterations on lengths/currents close the loop on phase margin and GBW —
the procedure section 4 of the paper describes.

The plans evaluate candidates with the *same* device models the simulator
uses (:mod:`repro.mos`), reproducing the paper's accuracy argument.
"""

from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.sizing.blocks import (
    BiasPoint,
    cascode_bias_chain,
    distribute_headroom,
    input_pair_current,
)
from repro.sizing.plans.base import DesignPlan
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.comdiac import Comdiac
from repro.sizing.verification import VerificationInterface

__all__ = [
    "BiasPoint",
    "Comdiac",
    "DesignPlan",
    "FoldedCascodePlan",
    "OtaSpecs",
    "ParasiticMode",
    "SizingResult",
    "TwoStagePlan",
    "VerificationInterface",
    "cascode_bias_chain",
    "distribute_headroom",
    "input_pair_current",
]
