"""Verification-by-simulation interface.

"A verification interface has also been developed which controls a
verification-by-simulation process.  It also permits to undergo
statistical analysis to check the reliability of the synthesized circuit"
(paper section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.metrics import OtaMetrics, measure_ota
from repro.analysis.montecarlo import MonteCarloResult, run_monte_carlo
from repro.circuit.testbench import OtaTestbench
from repro.errors import AnalysisError, ConvergenceError
from repro.sizing.specs import OtaSpecs


@dataclass
class VerificationReport:
    """Nominal + statistical verification outcome.

    ``metrics`` is None when the circuit could not even be measured (e.g.
    a corner starves the bias so badly the amplifier has no gain) — which
    also counts as a failed verification.
    """

    metrics: Optional[OtaMetrics]
    meets_gbw: bool
    meets_phase_margin: bool
    all_saturated: bool
    statistics: Optional[MonteCarloResult] = None
    failure_reason: Optional[str] = None

    @property
    def passed(self) -> bool:
        return (
            self.metrics is not None
            and self.meets_gbw
            and self.meets_phase_margin
            and self.all_saturated
        )

    def failures(self) -> Dict[str, bool]:
        return {
            "gbw": self.meets_gbw,
            "phase_margin": self.meets_phase_margin,
            "saturation": self.all_saturated,
        }


class VerificationInterface:
    """Runs simulation-based verification on a synthesized testbench."""

    def __init__(self, gbw_tolerance: float = 0.03, pm_tolerance: float = 1.0):
        self.gbw_tolerance = gbw_tolerance
        self.pm_tolerance = pm_tolerance

    def verify(
        self,
        testbench: OtaTestbench,
        specs: OtaSpecs,
        statistical_runs: int = 0,
        seed: int = 1234,
    ) -> VerificationReport:
        """Measure the circuit and compare against the specifications.

        With ``statistical_runs > 0`` a Monte-Carlo mismatch analysis
        (offset statistics) is included.
        """
        metrics = measure_ota(testbench)
        statistics = None
        if statistical_runs > 0:
            statistics = run_monte_carlo(
                testbench, runs=statistical_runs, seed=seed
            )
        return self.report_from_metrics(metrics, specs, statistics)

    def report_from_metrics(
        self,
        metrics: OtaMetrics,
        specs: OtaSpecs,
        statistics: Optional[MonteCarloResult] = None,
    ) -> VerificationReport:
        """Spec comparison on already-measured metrics.

        Shared by :meth:`verify` and the ensemble corner path, so both
        apply identical tolerances.
        """
        meets_gbw = metrics.gbw >= specs.gbw * (1.0 - self.gbw_tolerance)
        meets_pm = (
            metrics.phase_margin_deg >= specs.phase_margin - self.pm_tolerance
        )
        return VerificationReport(
            metrics=metrics,
            meets_gbw=meets_gbw,
            meets_phase_margin=meets_pm,
            all_saturated=metrics.all_saturated(),
            statistics=statistics,
        )

    def verify_corners(
        self,
        plan,
        result,
        specs: OtaSpecs,
        corners: Optional[Dict[str, object]] = None,
        ensemble: Optional[str] = None,
    ) -> Dict[str, VerificationReport]:
        """Re-verify a sizing result across process corners.

        ``plan`` must expose ``build_testbench``; each corner technology
        replaces the devices while the sizes and biases stay fixed — the
        deterministic worst-case companion to the Monte-Carlo analysis.

        On the stacked ensemble engine (the default) all corner replicas
        are measured as members of one
        :func:`~repro.analysis.ensemble.measure_ota_ensemble` call — one
        compiled program and one stacked small-signal solve instead of a
        full re-compile per corner.  ``ensemble="per-sample"`` (or the
        process-wide switch) restores the per-corner loop; members that
        cannot be stacked fall back to it automatically.
        """
        from repro.technology.corners import all_corners

        if corners is None:
            corners = all_corners(plan.technology)
        benches: Dict[str, object] = {}
        for name, technology in corners.items():
            corner_plan = type(plan)(technology, plan.model_level)
            benches[name] = corner_plan.build_testbench(result, specs)

        from repro.analysis.engine import PERSAMPLE, ensemble_engine

        reports: Dict[str, VerificationReport] = {}
        if ensemble_engine.resolve(ensemble) != PERSAMPLE:
            from repro.analysis.ensemble import measure_ota_ensemble

            measurements = measure_ota_ensemble(list(benches.values()))
            for name, measured in zip(benches, measurements):
                if measured.metrics is None:
                    reports[name] = VerificationReport(
                        metrics=None,
                        meets_gbw=False,
                        meets_phase_margin=False,
                        all_saturated=False,
                        failure_reason=measured.error,
                    )
                else:
                    reports[name] = self.report_from_metrics(
                        measured.metrics, specs
                    )
            return reports

        for name, bench in benches.items():
            try:
                reports[name] = self.verify(bench, specs)
            except (AnalysisError, ConvergenceError) as error:
                reports[name] = VerificationReport(
                    metrics=None,
                    meets_gbw=False,
                    meets_phase_margin=False,
                    all_saturated=False,
                    failure_reason=str(error),
                )
        return reports
