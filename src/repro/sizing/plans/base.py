"""Design plan interface.

A design plan owns all sizing knowledge for one topology.  The hierarchy
mirrors the paper's claim that "the use of hierarchy simplifies the
addition of new topologies in the tool": adding a topology means
implementing one subclass over the shared building blocks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.circuit.testbench import OtaTestbench
from repro.layout.parasitics import ParasiticReport
from repro.resilience.budget import Budget
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology


class DesignPlan(ABC):
    """Base class for topology sizing plans."""

    topology: str = "abstract"

    def __init__(self, technology: Technology, model_level: int = 1):
        technology.validate()
        self.technology = technology
        self.model_level = model_level

    def config_key(self) -> Optional[tuple]:
        """Canonical tuple of everything that parameterizes :meth:`size`.

        A plan whose sizing is a pure function of (this key, specs,
        mode, feedback, warm-start state) may return a tuple here, which
        lets the synthesis loop memoize whole sizing rounds on content
        (see :mod:`repro.layout.incremental`).  The default ``None``
        opts out — scripted or stateful plans must never be served from
        a cache.
        """
        return None

    @abstractmethod
    def size(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
        budget: Optional[Budget] = None,
    ) -> SizingResult:
        """Size the topology for ``specs``.

        ``mode`` selects the parasitic knowledge level (Table 1 cases);
        ``feedback`` is the layout tool's parasitic report for the
        layout-aware modes.  ``budget`` (when given) is checked at every
        iteration of the sizing fixed-point loop and may cap the
        iteration count (:meth:`Budget.sizing_iteration_cap`).
        """

    @abstractmethod
    def build_testbench(
        self,
        result: SizingResult,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
    ) -> OtaTestbench:
        """Materialise a sizing result into a measurable circuit, with the
        parasitic annotations implied by ``mode``."""
