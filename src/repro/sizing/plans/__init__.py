"""Design plans (one per topology)."""

from repro.sizing.plans.base import DesignPlan
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.plans.two_stage import TwoStagePlan

__all__ = ["DesignPlan", "FoldedCascodePlan", "TwoStagePlan"]
