"""Two-stage Miller OTA design plan.

The second topology in the tool, demonstrating the paper's point that the
hierarchical plan structure makes topologies cheap to add: this plan reuses
the same building blocks and iteration style as the folded-cascode plan.

Plan knowledge (classic two-stage recipe):

* Miller capacitor ``Cc = cc_ratio * CL`` (0.25 by default);
* ``gm1 = 2 pi GBW Cc`` sets the input pair current;
* the output stage transconductance is iterated until the phase margin
  target is met (the non-dominant pole sits at ``~gm6 / CL``);
* widths by model inversion at overdrives derived from the output range.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.analysis.metrics import measure_ota
from repro.circuit.testbench import OtaTestbench
from repro.circuit.topologies.folded_cascode import DeviceSize
from repro.circuit.topologies.two_stage import (
    TWO_STAGE_DEVICES,
    TwoStageDesign,
    build_two_stage,
)
from repro.layout.parasitics import ParasiticReport
from repro.mos import make_model, width_for_current
from repro.mos.junction import DiffusionGeometry
from repro.resilience.budget import Budget
from repro.sizing.blocks import distribute_headroom, input_pair_current
from repro.sizing.plans.base import DesignPlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology
from repro.units import UM


class TwoStagePlan(DesignPlan):
    """Knowledge-based sizing of a Miller-compensated two-stage OTA."""

    topology = "two_stage"

    def __init__(
        self,
        technology: Technology,
        model_level: int = 1,
        veff_input: float = 0.15,
        cc_ratio: float = 0.25,
        max_iterations: int = 15,
        gbw_tolerance: float = 0.02,
        pm_tolerance: float = 1.0,
    ):
        super().__init__(technology, model_level)
        self.model_n = make_model(technology.nmos, model_level)
        self.model_p = make_model(technology.pmos, model_level)
        self.veff_input = veff_input
        self.cc_ratio = cc_ratio
        self.max_iterations = max_iterations
        self.gbw_tolerance = gbw_tolerance
        self.pm_tolerance = pm_tolerance
        self.lengths = {
            "m1": 1.0 * UM,
            "m2": 1.0 * UM,
            "m3": 1.0 * UM,
            "m4": 1.0 * UM,
            "m5": 1.0 * UM,
            "m6": 0.8 * UM,
            "m7": 0.8 * UM,
        }

    def config_key(self) -> tuple:
        """See :meth:`DesignPlan.config_key`; this plan is stateless."""
        return (
            self.topology,
            self.technology.fingerprint(),
            self.model_level,
            self.veff_input,
            self.cc_ratio,
            self.max_iterations,
            self.gbw_tolerance,
            self.pm_tolerance,
            tuple(sorted(self.lengths.items())),
        )

    def size(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
        budget: Optional[Budget] = None,
    ) -> SizingResult:
        specs.validate()
        out_lo, out_hi = specs.output_range
        veff7, = distribute_headroom(out_lo, stages=1)
        veff6, = distribute_headroom(specs.vdd - out_hi, stages=1)
        veff_mirror = min(0.3, veff6 + 0.05)
        veff_tail = 0.2

        cc = self.cc_ratio * specs.cload
        cc_eff = cc
        gm6_factor = 3.0
        metrics = None
        result = None
        iterations = 0
        max_iterations = (
            self.max_iterations if budget is None
            else budget.sizing_iteration_cap(self.max_iterations)
        )

        for iteration in range(1, max_iterations + 1):
            if budget is not None:
                budget.check(
                    "sizing.iteration",
                    topology=self.topology,
                    iteration=iteration,
                )
            iterations = iteration
            gm1 = 2.0 * math.pi * specs.gbw * cc_eff
            id1 = input_pair_current(
                self.model_n, gm1, self.veff_input, self.lengths["m1"]
            )
            gm6 = gm6_factor * gm1 * specs.cload / cc
            id6 = input_pair_current(self.model_p, gm6, veff6, self.lengths["m6"])

            currents = {
                "m1": id1,
                "m2": id1,
                "m3": id1,
                "m4": id1,
                "m5": 2.0 * id1,
                "m6": id6,
                "m7": id6,
            }
            sizes: Dict[str, Tuple[float, float]] = {}
            spec_table = {
                "m1": (self.model_n, self.veff_input, 0.0),
                "m2": (self.model_n, self.veff_input, 0.0),
                "m3": (self.model_p, veff_mirror, 0.0),
                "m4": (self.model_p, veff_mirror, 0.0),
                "m5": (self.model_n, veff_tail, 0.0),
                "m6": (self.model_p, veff6, 0.0),
                "m7": (self.model_n, veff7, 0.0),
            }
            for device, (model, veff, vsb) in spec_table.items():
                width = width_for_current(
                    model,
                    currents[device],
                    self.lengths[device],
                    veff,
                    vds=specs.vdd / 2.0,
                    vsb=vsb,
                )
                sizes[device] = (width, self.lengths[device])

            vbn = self.model_n.threshold(0.0) + veff_tail
            result = SizingResult(
                sizes=sizes,
                currents=currents,
                biases={"vbn": vbn},
                overdrives={
                    "input": self.veff_input,
                    "mirror": veff_mirror,
                    "tail": veff_tail,
                    "out_p": veff6,
                    "out_n": veff7,
                },
                iterations=iteration,
                mode=mode,
            )
            # Stash the compensation value for build_testbench.
            result.biases["_cc"] = cc

            testbench = self.build_testbench(result, specs, mode, feedback)
            metrics = measure_ota(testbench)

            gbw_error = (metrics.gbw - specs.gbw) / specs.gbw
            pm_error = specs.phase_margin - metrics.phase_margin_deg
            if (
                abs(gbw_error) <= self.gbw_tolerance
                and abs(pm_error) <= self.pm_tolerance
            ):
                break
            cc_eff = gm1 / (2.0 * math.pi * metrics.gbw) * cc_eff / cc * cc
            cc_eff = gm1 / (2.0 * math.pi * metrics.gbw)
            if pm_error > self.pm_tolerance:
                gm6_factor *= 1.0 + min(pm_error / 30.0, 0.5)
            elif pm_error < -4.0 * self.pm_tolerance and gm6_factor > 1.5:
                gm6_factor *= max(0.8, 1.0 + pm_error / 100.0)

        assert result is not None and metrics is not None
        result.predicted = metrics
        result.iterations = iterations
        if telemetry.enabled():
            telemetry.count("sizing.iterations", iterations)
        vth_n = self.model_n.threshold(0.0)
        result.computed_icmr = (
            vth_n + self.veff_input + veff_tail + 0.05,
            specs.vdd - veff_mirror - abs(self.model_p.params.vto) + vth_n,
        )
        result.computed_output_range = (veff7 + 0.05, specs.vdd - veff6 - 0.05)
        return result

    def _device_geometry(
        self,
        width: float,
        mode: ParasiticMode,
        feedback: Optional[ParasiticReport],
        device: str,
    ) -> Tuple[DiffusionGeometry, int]:
        if mode is ParasiticMode.NONE:
            return DiffusionGeometry(ad=0.0, pd=0.0, as_=0.0, ps=0.0), 1
        if mode.uses_layout and feedback is not None and device in feedback.devices:
            info = feedback.devices[device]
            return info.geometry, info.nf
        return (
            DiffusionGeometry.single_fold(width, self.technology.default_ldif),
            1,
        )

    def build_testbench(
        self,
        result: SizingResult,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
    ) -> OtaTestbench:
        device_sizes: Dict[str, DeviceSize] = {}
        for device in TWO_STAGE_DEVICES:
            width, length = result.sizes[device]
            geometry, nf = self._device_geometry(width, mode, feedback, device)
            device_sizes[device] = DeviceSize(
                w=width, l=length, nf=nf, geometry=geometry
            )
        extra_net_caps: Dict[str, float] = {}
        coupling_caps: Dict[tuple, float] = {}
        if mode is ParasiticMode.FULL and feedback is not None:
            extra_net_caps.update(feedback.net_capacitance)
            for net, value in feedback.well_capacitance.items():
                if net not in ("vdd!", "0"):
                    extra_net_caps[net] = extra_net_caps.get(net, 0.0) + value
            coupling_caps.update(feedback.coupling)
        design = TwoStageDesign(
            technology=self.technology,
            sizes=device_sizes,
            vbn=result.biases["vbn"],
            vdd=specs.vdd,
            vcm=specs.measurement_vcm,
            cload=specs.cload,
            cc=result.biases.get("_cc", self.cc_ratio * specs.cload),
            model_level=self.model_level,
            extra_net_caps=extra_net_caps,
            coupling_caps=coupling_caps,
        )
        return build_two_stage(design)
