"""Folded-cascode OTA design plan (paper section 4 + Figure 4).

Sizing procedure, following COMDIAC's structure:

1. fix the DC operating point: overdrives from the output-range and ICMR
   specifications, bias voltages from the exact (body-effect-aware)
   threshold expressions;
2. heuristically estimate the input-pair current from the GBW target and
   the *effective* load (specified load + whatever parasitic knowledge the
   current mode provides);
3. compute all widths by model inversion at the chosen operating point;
4. evaluate performance (with the shared device models) and iterate
   monotonically: cascode/mirror lengths shrink while the phase margin is
   short (their junction and gate capacitance loads the folding and mirror
   nodes), then the cascode-branch current ratio rises; a new current
   estimation closes the GBW error.

Overestimated parasitics (Table 1 case 2) therefore push lengths to the
technology minimum and currents up — reproducing the paper's observation
that case 2 wastes power and loses gain, output resistance and noise.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.analysis.metrics import measure_ota
from repro.circuit.testbench import OtaTestbench
from repro.circuit.topologies.folded_cascode import (
    FOLDED_CASCODE_DEVICES,
    DeviceSize,
    FoldedCascodeDesign,
    build_folded_cascode,
)
from repro.layout.parasitics import ParasiticReport
from repro.mos import make_model, width_for_current
from repro.mos.junction import DiffusionGeometry
from repro.resilience.budget import Budget
from repro.sizing.blocks import (
    cascode_bias_chain,
    computed_ranges,
    distribute_headroom,
    input_pair_current,
    tail_overdrive_limit,
)
from repro.sizing.plans.base import DesignPlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology
from repro.units import UM

#: Device name -> sizing role.
DEVICE_ROLE = {
    "mp1": "input",
    "mp2": "input",
    "mp5": "tail",
    "mn5": "sink",
    "mn6": "sink",
    "mn1c": "ncas",
    "mn2c": "ncas",
    "mp3": "mirror",
    "mp4": "mirror",
    "mp3c": "pcas",
    "mp4c": "pcas",
}

_P_ROLES = ("input", "tail", "mirror", "pcas")


class FoldedCascodePlan(DesignPlan):
    """Knowledge-based sizing of the paper's folded-cascode OTA."""

    topology = "folded_cascode"

    def __init__(
        self,
        technology: Technology,
        model_level: int = 1,
        veff_input: float = 0.18,
        initial_lengths: Optional[Dict[str, float]] = None,
        max_iterations: int = 30,
        gbw_tolerance: float = 0.01,
        pm_tolerance: float = 0.75,
        kappa_floor: float = 0.6,
        max_cascode_length: float = 3.0 * UM,
    ):
        super().__init__(technology, model_level)
        self.model_n = make_model(technology.nmos, model_level)
        self.model_p = make_model(technology.pmos, model_level)
        self.veff_input = veff_input
        self.max_iterations = max_iterations
        self.gbw_tolerance = gbw_tolerance
        self.pm_tolerance = pm_tolerance
        self.kappa_floor = kappa_floor
        self.max_cascode_length = max_cascode_length
        minimum = technology.feature_size
        self.min_length = minimum
        self.initial_lengths = dict(
            initial_lengths
            or {
                "input": 1.0 * UM,
                "tail": 1.0 * UM,
                "sink": 1.0 * UM,
                "ncas": 1.0 * UM,
                "mirror": 1.0 * UM,
                "pcas": 1.0 * UM,
            }
        )

    def config_key(self) -> tuple:
        """Everything :meth:`size` reads besides its arguments.

        The plan is stateless across calls — every ``size()`` restarts
        from ``initial_lengths`` — so this tuple plus the call inputs
        (specs, mode, feedback, warm-start session state) fully
        determines the result, making whole sizing rounds safe to
        memoize on content.
        """
        return (
            self.topology,
            self.technology.fingerprint(),
            self.model_level,
            self.veff_input,
            self.max_iterations,
            self.gbw_tolerance,
            self.pm_tolerance,
            self.kappa_floor,
            self.max_cascode_length,
            self.min_length,
            tuple(sorted(self.initial_lengths.items())),
        )

    # -- Operating point ------------------------------------------------------

    def _overdrives(self, specs: OtaSpecs) -> Dict[str, float]:
        """Overdrives from the voltage-range specifications."""
        out_lo, out_hi = specs.output_range
        veff_sink, veff_ncas = distribute_headroom(out_lo)
        veff_mirror, veff_pcas = distribute_headroom(specs.vdd - out_hi)
        veff_tail = tail_overdrive_limit(
            self.model_p, specs.vdd, specs.input_cm_range[1], self.veff_input
        )
        return {
            "input": self.veff_input,
            "tail": veff_tail,
            "sink": veff_sink,
            "ncas": veff_ncas,
            "mirror": veff_mirror,
            "pcas": veff_pcas,
        }

    # -- Geometry ----------------------------------------------------------------

    def _widths(
        self,
        currents: Dict[str, float],
        lengths: Dict[str, float],
        veff: Dict[str, float],
        bias,
        vdd: float,
    ) -> Dict[str, Tuple[float, float]]:
        """Widths by model inversion at per-device (vds, vsb) estimates."""
        sizes: Dict[str, Tuple[float, float]] = {}
        v_fold = bias.nodes["fold"]
        v_tail = bias.nodes["tail"]
        v_x = bias.nodes["x"]
        v_mir = bias.nodes["mir"]
        vout_mid = vdd / 2.0

        vds_vsb = {
            "input": (max(v_tail - v_fold, veff["input"] + 0.1), vdd - v_tail),
            "tail": (vdd - v_tail, 0.0),
            "sink": (v_fold, 0.0),
            "ncas": (max(v_mir - v_fold, veff["ncas"] + 0.1), v_fold),
            "mirror": (vdd - v_x, 0.0),
            "pcas": (max(v_x - v_mir, veff["pcas"] + 0.1), vdd - v_x),
        }
        for device, role in DEVICE_ROLE.items():
            model = self.model_p if role in _P_ROLES else self.model_n
            vds, vsb = vds_vsb[role]
            width = width_for_current(
                model,
                currents[device],
                lengths[role],
                veff[role],
                vds=max(vds, veff[role] + 0.05),
                vsb=max(vsb, 0.0),
            )
            sizes[device] = (width, lengths[role])
        return sizes

    def _currents(self, id1: float, kappa: float) -> Dict[str, float]:
        i_casc = kappa * id1
        i_sink = id1 + i_casc
        return {
            "mp1": id1,
            "mp2": id1,
            "mp5": 2.0 * id1,
            "mn5": i_sink,
            "mn6": i_sink,
            "mn1c": i_casc,
            "mn2c": i_casc,
            "mp3": i_casc,
            "mp4": i_casc,
            "mp3c": i_casc,
            "mp4c": i_casc,
        }

    # -- Main loop ------------------------------------------------------------------

    def _veff_for_gm_and_current(
        self, gm: float, current: float, length: float
    ) -> float:
        """Overdrive at which a device carrying ``current`` shows ``gm``.

        Bisection on ``Id(veff)/gm(veff) = f/f' = current/gm`` — exactly
        ``veff/2`` for the square law, degradation-aware for level 3.
        """
        target = current / gm
        lo, hi = 0.08, 0.6
        for _ in range(60):
            mid = (lo + hi) / 2.0
            ratio = (
                self.model_p._saturation_current_factor(mid, length)
                / self.model_p._saturation_current_factor_derivative(
                    mid, length
                )
            )
            if ratio < target:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def size(
        self,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
        budget: Optional[Budget] = None,
    ) -> SizingResult:
        specs.validate()
        veff = self._overdrives(specs)

        lengths = dict(self.initial_lengths)
        kappa = 1.0
        cl_eff = specs.cload
        metrics = None
        result = None
        iterations = 0
        bias = None
        max_iterations = (
            self.max_iterations if budget is None
            else budget.sizing_iteration_cap(self.max_iterations)
        )

        for iteration in range(1, max_iterations + 1):
            if budget is not None:
                budget.check(
                    "sizing.iteration",
                    topology=self.topology,
                    iteration=iteration,
                )
            iterations = iteration
            gm1 = 2.0 * math.pi * specs.gbw * cl_eff
            id1 = input_pair_current(
                self.model_p, gm1, veff["input"], lengths["input"]
            )
            if specs.slew_rate is not None:
                # The tail (2 id1) must slew the effective load; when the
                # slew demand exceeds the gm-driven current, spend the
                # surplus as a larger input overdrive so gm (and GBW) stay
                # on target instead of overshooting.
                id1_slew = specs.slew_rate * cl_eff / 2.0
                if id1_slew > id1:
                    id1 = id1_slew
                    veff_max = max(
                        self.veff_input,
                        specs.vdd - specs.input_cm_range[1]
                        - self.model_p.threshold(0.0) - 0.12 - 0.05,
                    )
                    veff["input"] = min(
                        self._veff_for_gm_and_current(
                            gm1, id1, lengths["input"]
                        ),
                        veff_max,
                    )
                    # A hotter input eats the tail's ICMR headroom.
                    veff["tail"] = tail_overdrive_limit(
                        self.model_p, specs.vdd,
                        specs.input_cm_range[1], veff["input"],
                    )
            bias = cascode_bias_chain(
                self.model_n, self.model_p, specs.vdd, veff,
                specs.measurement_vcm,
            )
            currents = self._currents(id1, kappa)
            sizes = self._widths(currents, lengths, veff, bias, specs.vdd)

            result = SizingResult(
                sizes=sizes,
                currents=currents,
                biases=dict(bias.biases),
                overdrives=dict(veff),
                iterations=iteration,
                mode=mode,
            )
            testbench = self.build_testbench(result, specs, mode, feedback)
            metrics = measure_ota(testbench)

            gbw_error = (metrics.gbw - specs.gbw) / specs.gbw
            pm_error = specs.phase_margin - metrics.phase_margin_deg

            if (
                abs(gbw_error) <= self.gbw_tolerance
                and abs(pm_error) <= self.pm_tolerance
            ):
                break

            # New current estimation from the measured effective load.
            cl_eff = gm1 / (2.0 * math.pi * metrics.gbw)

            # Monotonic iteration on cascode/mirror lengths (then branch
            # current) until the phase margin lands on target.  A deficit
            # shortens the lengths (their gate/junction capacitance loads
            # the folding and mirror nodes); an overshoot banks the slack as
            # longer lengths (gain, output resistance) and a leaner cascode
            # branch (power).
            if pm_error > self.pm_tolerance:
                shrunk = False
                factor = max(0.78, 1.0 - pm_error / 80.0)
                for role in ("ncas", "pcas", "mirror"):
                    if lengths[role] > self.min_length * 1.01:
                        lengths[role] = max(self.min_length, lengths[role] * factor)
                        shrunk = True
                if not shrunk:
                    kappa = min(3.0, kappa * (1.0 + min(pm_error / 40.0, 0.3)))
            elif pm_error < -self.pm_tolerance:
                if kappa > self.kappa_floor * 1.01:
                    kappa = max(
                        self.kappa_floor, kappa * (1.0 + pm_error / 60.0)
                    )
                else:
                    grew = False
                    factor = min(1.3, 1.0 - pm_error / 70.0)
                    for role in ("ncas", "pcas", "mirror"):
                        if lengths[role] < self.max_cascode_length * 0.99:
                            lengths[role] = min(
                                self.max_cascode_length, lengths[role] * factor
                            )
                            grew = True
                    if not grew:
                        break  # both knobs exhausted; accept the overshoot

        assert result is not None and metrics is not None
        result.predicted = metrics
        result.iterations = iterations
        if telemetry.enabled():
            telemetry.count("sizing.iterations", iterations)
        icmr, out_range = computed_ranges(
            self.model_n, self.model_p, specs.vdd, veff, bias
        )
        result.computed_icmr = icmr
        result.computed_output_range = out_range
        return result

    # -- Netlist construction -----------------------------------------------------------

    def _device_geometry(
        self,
        device: str,
        width: float,
        mode: ParasiticMode,
        feedback: Optional[ParasiticReport],
    ) -> Tuple[DiffusionGeometry, int]:
        """Junction geometry and fold count implied by the parasitic mode."""
        if mode is ParasiticMode.NONE:
            return DiffusionGeometry(ad=0.0, pd=0.0, as_=0.0, ps=0.0), 1
        if mode.uses_layout and feedback is not None and device in feedback.devices:
            info = feedback.devices[device]
            return info.geometry, info.nf
        # Case 2, and the first pass of the layout-aware modes: one fold.
        return (
            DiffusionGeometry.single_fold(width, self.technology.default_ldif),
            1,
        )

    def build_testbench(
        self,
        result: SizingResult,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
    ) -> OtaTestbench:
        device_sizes: Dict[str, DeviceSize] = {}
        for device in FOLDED_CASCODE_DEVICES:
            width, length = result.sizes[device]
            geometry, nf = self._device_geometry(device, width, mode, feedback)
            device_sizes[device] = DeviceSize(
                w=width, l=length, nf=nf, geometry=geometry
            )

        extra_net_caps: Dict[str, float] = {}
        coupling_caps: Dict[tuple, float] = {}
        if mode is ParasiticMode.FULL and feedback is not None:
            extra_net_caps.update(feedback.net_capacitance)
            for net, value in feedback.well_capacitance.items():
                if net not in ("vdd!", "0"):
                    extra_net_caps[net] = extra_net_caps.get(net, 0.0) + value
            coupling_caps.update(feedback.coupling)

        design = FoldedCascodeDesign(
            technology=self.technology,
            sizes=device_sizes,
            biases=result.biases,
            vdd=specs.vdd,
            vcm=specs.measurement_vcm,
            cload=specs.cload,
            model_level=self.model_level,
            extra_net_caps=extra_net_caps,
            coupling_caps=coupling_caps,
        )
        return build_folded_cascode(design)
