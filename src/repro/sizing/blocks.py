"""Building-block sizing routines.

"Fixed routines have been developed for frequently used building blocks"
(paper section 4).  These helpers turn voltage-range specifications into
overdrives and bias voltages, and gm targets into currents, using the
shared device models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SizingError
from repro.mos.model import MosModel


@dataclass
class BiasPoint:
    """Computed overdrives and node voltages of the folded-cascode core."""

    veff: Dict[str, float]
    nodes: Dict[str, float]
    biases: Dict[str, float]


def distribute_headroom(
    swing_limit: float, stages: int = 2, margin: float = 0.05, floor: float = 0.12
) -> Tuple[float, ...]:
    """Split an output-swing headroom across stacked devices.

    For ``vout_min = 0.51 V`` over a sink + cascode, each device's
    saturation voltage gets a share of ``swing_limit - margin``; the device
    nearest the rail (first element) receives the larger share since its
    current is larger.  Raises when the budget cannot give every device at
    least ``floor`` volts of overdrive.
    """
    if stages < 1:
        raise SizingError("need at least one stacked device")
    budget = swing_limit - margin
    if budget < stages * floor:
        raise SizingError(
            f"output swing of {swing_limit:.2f} V cannot bias {stages} "
            f"stacked devices with {floor:.2f} V overdrive each"
        )
    if stages == 1:
        return (budget,)
    weights = [1.2] + [1.0] * (stages - 1)
    total = sum(weights)
    return tuple(budget * weight / total for weight in weights)


def input_pair_current(
    model: MosModel, gm: float, veff: float, length: float
) -> float:
    """Drain current delivering transconductance ``gm`` at overdrive ``veff``.

    Inverts the shared model's gm expression: with
    ``Id = 0.5 beta f(veff)`` and ``gm = 0.5 beta f'(veff)``, the current is
    ``gm * f(veff) / f'(veff)`` — exactly ``gm*veff/2`` for the square law
    and mobility-degradation-aware for level 3.
    """
    if gm <= 0.0 or veff <= 0.0:
        raise SizingError("gm and overdrive must be positive")
    factor = model._saturation_current_factor(veff, length)
    derivative = model._saturation_current_factor_derivative(veff, length)
    if derivative <= 0.0:
        raise SizingError("degenerate model inversion in input_pair_current")
    return gm * factor / derivative


def tail_overdrive_limit(
    model_p: MosModel,
    vdd: float,
    icmr_high: float,
    veff_input: float,
    margin: float = 0.05,
    ceiling: float = 0.35,
    floor: float = 0.12,
) -> float:
    """Largest PMOS tail overdrive honouring the upper ICMR bound.

    ``vcm_max <= vdd - vsd_sat(tail) - |vgs(input)|``; the tail's
    saturation voltage equals its overdrive.
    """
    vth_in = model_p.threshold(0.0)
    available = vdd - icmr_high - vth_in - veff_input - margin
    if available < floor:
        raise SizingError(
            f"ICMR upper bound {icmr_high:.2f} V leaves only "
            f"{available:.2f} V for the tail source"
        )
    return min(available, ceiling)


def cascode_bias_chain(
    model_n: MosModel,
    model_p: MosModel,
    vdd: float,
    veff: Dict[str, float],
    vcm: float,
    saturation_margin: float = 0.10,
) -> BiasPoint:
    """Node voltages and bias voltages for the folded-cascode core.

    ``veff`` must provide entries for ``input``, ``tail``, ``sink``,
    ``ncas``, ``mirror``, ``pcas``.  Body effect is handled exactly with
    the models' threshold functions (fixed-point for the input pair whose
    source rides at the tail node).
    """
    for key in ("input", "tail", "sink", "ncas", "mirror", "pcas"):
        if key not in veff:
            raise SizingError(f"missing overdrive entry {key!r}")

    nodes: Dict[str, float] = {}
    biases: Dict[str, float] = {}

    # NMOS side: folding node above the sink's saturation voltage.
    v_fold = veff["sink"] + saturation_margin
    nodes["fold"] = v_fold
    biases["vbn"] = model_n.threshold(0.0) + veff["sink"]
    biases["vc1"] = v_fold + model_n.threshold(v_fold) + veff["ncas"]

    # PMOS mirror side: x nodes one saturation margin below the rail.
    v_x = vdd - veff["mirror"] - saturation_margin
    nodes["x"] = v_x
    vsb_pcas = vdd - v_x
    biases["vc3"] = v_x - (model_p.threshold(vsb_pcas) + veff["pcas"])
    # The mirror gate (mir node) self-biases at vdd - |vgs(mirror)|.
    nodes["mir"] = vdd - (model_p.threshold(0.0) + veff["mirror"])

    # Tail gate.
    biases["vp1"] = vdd - (model_p.threshold(0.0) + veff["tail"])

    # Tail node: fixed point including input-pair body effect (bulk at vdd).
    v_tail = vcm + model_p.threshold(0.0) + veff["input"]
    for _ in range(20):
        vsb = vdd - v_tail
        updated = vcm + model_p.threshold(max(vsb, 0.0)) + veff["input"]
        if abs(updated - v_tail) < 1e-9:
            break
        v_tail = updated
    nodes["tail"] = v_tail

    return BiasPoint(veff=dict(veff), nodes=nodes, biases=biases)


def computed_ranges(
    model_n: MosModel,
    model_p: MosModel,
    vdd: float,
    veff: Dict[str, float],
    bias: BiasPoint,
    saturation_margin: float = 0.05,
) -> Tuple[Tuple[float, float], Tuple[float, float]]:
    """(ICMR, output range) achieved by a bias point.

    These are synthesis *results* in the paper's methodology, reported for
    comparison against the specification.
    """
    # Output low: sink + cascode saturation voltages.
    vout_lo = veff["sink"] + veff["ncas"] + 2.0 * saturation_margin
    vout_hi = vdd - veff["mirror"] - veff["pcas"] - 2.0 * saturation_margin
    # Input high: tail saturation + input vgs below the rail.
    vth_in = model_p.threshold(max(vdd - bias.nodes["tail"], 0.0))
    vcm_hi = vdd - veff["tail"] - vth_in - veff["input"] - saturation_margin
    # Input low: the input device stays saturated while its drain sits at
    # the folding node: vcm >= v_fold - |vth|.
    vcm_lo = bias.nodes["fold"] - vth_in + saturation_margin
    return (vcm_lo, vcm_hi), (vout_lo, vout_hi)
