"""Specification and result records for sizing."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.errors import SizingError


class ParasiticMode(Enum):
    """How much layout knowledge the sizing uses (Table 1's four cases)."""

    NONE = 1
    """Case 1: no layout capacitances at all (only gate capacitance)."""
    SINGLE_FOLD = 2
    """Case 2: diffusion capacitance assuming one fold per transistor,
    no routing capacitance (no layout information)."""
    LAYOUT_DIFFUSION = 3
    """Case 3: exact diffusion geometry from the layout tool, routing
    capacitance neglected."""
    FULL = 4
    """Case 4: all layout parasitics (diffusion, routing, coupling, well)."""

    @property
    def uses_layout(self) -> bool:
        return self in (ParasiticMode.LAYOUT_DIFFUSION, ParasiticMode.FULL)


@dataclass
class OtaSpecs:
    """Input specifications (the paper's Table 1 header)."""

    vdd: float = 3.3
    gbw: float = 65.0e6
    phase_margin: float = 65.0
    cload: float = 3.0e-12
    input_cm_range: Tuple[float, float] = (0.55, 1.84)
    output_range: Tuple[float, float] = (0.51, 2.31)
    vcm: Optional[float] = None
    """Measurement common-mode level; defaults to the ICMR midpoint."""
    slew_rate: Optional[float] = None
    """Optional minimum slew rate, V/s.  When it demands more tail current
    than the GBW target, the plan raises the current and re-balances the
    input overdrive to keep gm (and GBW) on target."""

    def validate(self) -> None:
        if self.vdd <= 0.0:
            raise SizingError("supply must be positive")
        if self.gbw <= 0.0 or self.cload <= 0.0:
            raise SizingError("GBW and load must be positive")
        if not 0.0 < self.phase_margin < 90.0:
            raise SizingError("phase margin must be in (0, 90) degrees")
        lo, hi = self.input_cm_range
        if not lo < hi:
            raise SizingError("input common-mode range is empty")
        lo, hi = self.output_range
        if not 0.0 <= lo < hi <= self.vdd:
            raise SizingError("output range must fit inside the supply")
        if self.slew_rate is not None and self.slew_rate <= 0.0:
            raise SizingError("slew rate target must be positive")

    @property
    def measurement_vcm(self) -> float:
        if self.vcm is not None:
            return self.vcm
        lo, hi = self.input_cm_range
        return (lo + hi) / 2.0


@dataclass
class SizingResult:
    """Output of a design plan run."""

    sizes: Dict[str, Tuple[float, float]]
    """Device name -> (W, L), requested (pre-snapping) values."""
    currents: Dict[str, float]
    """Device name -> drain current magnitude, A."""
    biases: Dict[str, float]
    """Bias net -> voltage."""
    overdrives: Dict[str, float] = field(default_factory=dict)
    predicted: Optional[object] = None
    """OtaMetrics from the plan's own evaluation."""
    iterations: int = 0
    mode: ParasiticMode = ParasiticMode.NONE
    computed_icmr: Tuple[float, float] = (0.0, 0.0)
    computed_output_range: Tuple[float, float] = (0.0, 0.0)

    def total_current(self, branches: Dict[str, float]) -> float:
        return sum(branches.values())
