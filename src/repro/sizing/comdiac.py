"""The sizing tool facade.

"Circuit topologies are selected from among fixed alternatives (design
style selections), each with associated detailed design knowledge"
(paper section 4).  :class:`Comdiac` is that front end: a registry of
design plans keyed by topology name, plus the verification interface.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.errors import SizingError
from repro.layout.parasitics import ParasiticReport
from repro.sizing.plans.base import DesignPlan
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.technology.process import Technology


class Comdiac:
    """Knowledge-based sizing tool over a plan registry."""

    def __init__(self, technology: Technology, model_level: int = 1):
        technology.validate()
        self.technology = technology
        self.model_level = model_level
        self._plan_classes: Dict[str, Type[DesignPlan]] = {}
        self._plans: Dict[str, DesignPlan] = {}
        self.register_plan(FoldedCascodePlan)
        self.register_plan(TwoStagePlan)

    def register_plan(self, plan_class: Type[DesignPlan]) -> None:
        """Add a topology; hierarchy makes this a one-liner for clients."""
        topology = plan_class.topology
        if topology == "abstract":
            raise SizingError("plan class must define a topology name")
        self._plan_classes[topology] = plan_class

    @property
    def topologies(self) -> list:
        return sorted(self._plan_classes)

    def plan(self, topology: str) -> DesignPlan:
        """Plan instance for a topology (cached)."""
        if topology not in self._plan_classes:
            raise SizingError(
                f"unknown topology {topology!r}; available: {self.topologies}"
            )
        if topology not in self._plans:
            self._plans[topology] = self._plan_classes[topology](
                self.technology, self.model_level
            )
        return self._plans[topology]

    def synthesize(
        self,
        topology: str,
        specs: OtaSpecs,
        mode: ParasiticMode = ParasiticMode.NONE,
        feedback: Optional[ParasiticReport] = None,
    ) -> SizingResult:
        """Size ``topology`` for ``specs`` under a parasitic mode."""
        return self.plan(topology).size(specs, mode, feedback)
