"""Unit helpers.

All internal quantities are SI (metres, volts, amperes, farads, hertz,
seconds).  These constants and helpers make call sites read like the paper:
``w = 10 * UM`` or ``gbw = 65 * MEG``.
"""

from __future__ import annotations

import math

# Scale factors -------------------------------------------------------------

TERA = 1e12
GIGA = 1e9
MEG = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Common engineering aliases.
UM = MICRO
NM = NANO
MM = MILLI
PF = PICO
FF = FEMTO
NF = NANO
UA = MICRO
MA = MILLI
MV = MILLI
UV = MICRO
MHZ = MEG
KHZ = KILO
GHZ = GIGA

# Physical constants ---------------------------------------------------------

BOLTZMANN = 1.380649e-23
"""Boltzmann constant k, J/K."""

ELECTRON_CHARGE = 1.602176634e-19
"""Elementary charge q, C."""

EPSILON_0 = 8.8541878128e-12
"""Vacuum permittivity, F/m."""

EPSILON_SIO2 = 3.9 * EPSILON_0
"""Permittivity of silicon dioxide, F/m."""

EPSILON_SI = 11.7 * EPSILON_0
"""Permittivity of silicon, F/m."""

ROOM_TEMPERATURE = 300.15
"""Default simulation temperature (27 C), K."""


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """Return kT/q at the given temperature in kelvin."""
    return BOLTZMANN * temperature / ELECTRON_CHARGE


def db(value: float) -> float:
    """Return ``20*log10(|value|)``; -inf for zero."""
    magnitude = abs(value)
    if magnitude == 0.0:
        return -math.inf
    return 20.0 * math.log10(magnitude)


def from_db(value_db: float) -> float:
    """Inverse of :func:`db`."""
    return 10.0 ** (value_db / 20.0)


def degrees(radians: float) -> float:
    """Radians to degrees."""
    return math.degrees(radians)


def parallel(*resistances: float) -> float:
    """Parallel combination of resistances (or any conductive quantity).

    Infinite inputs are ignored; if every input is infinite the result is
    ``math.inf``.
    """
    conductance = 0.0
    for resistance in resistances:
        if resistance == 0.0:
            return 0.0
        if math.isinf(resistance):
            continue
        conductance += 1.0 / resistance
    if conductance == 0.0:
        return math.inf
    return 1.0 / conductance


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a value with an SI prefix, e.g. ``format_si(6.5e7, 'Hz')``.

    >>> format_si(65e6, 'Hz')
    '65.0MHz'
    """
    if value == 0.0:
        return f"0{unit}"
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
        (1e-18, "a"),
    ]
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g}{prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{digits}g}{prefix}{unit}"
