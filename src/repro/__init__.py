"""repro — layout-oriented synthesis of high performance analog circuits.

A full-system reproduction of Dessouky, Louërat & Porte (DATE 2000):
knowledge-based analog circuit sizing coupled with procedural layout
generation so that layout parasitics are estimated and compensated *during*
sizing.

Quick start::

    from repro import (
        OtaSpecs, ParasiticMode, LayoutOrientedSynthesizer, generic_060,
    )

    technology = generic_060()
    specs = OtaSpecs(gbw=65e6, phase_margin=65.0, cload=3e-12)
    synthesizer = LayoutOrientedSynthesizer(technology)
    outcome = synthesizer.run(specs, mode=ParasiticMode.FULL)
    print(outcome.sizing.predicted)       # performance of the sized OTA
    print(outcome.layout_calls)           # layout-tool calls to converge

Packages:

* :mod:`repro.technology` — process parameters, design rules, metal stack;
* :mod:`repro.mos` — shared device models (level 1 and level 3);
* :mod:`repro.circuit` — netlists and topology generators;
* :mod:`repro.analysis` — DC/AC/noise simulator and OTA metrics;
* :mod:`repro.layout` — procedural layout generation (the CAIRO substrate);
* :mod:`repro.sizing` — knowledge-based design plans (the COMDIAC
  substrate);
* :mod:`repro.core` — the layout-oriented synthesis loop and the Table-1
  experiment harness.
"""

from repro.core.synthesis import LayoutOrientedSynthesizer, SynthesisOutcome
from repro.core.traditional import TraditionalFlow
from repro.core.cases import CaseResult, run_case
from repro.core.report import format_table1
from repro.sizing.specs import OtaSpecs, ParasiticMode, SizingResult
from repro.sizing.comdiac import Comdiac
from repro.technology.presets import generic_035, generic_060, generic_080

__version__ = "1.0.0"

__all__ = [
    "CaseResult",
    "Comdiac",
    "LayoutOrientedSynthesizer",
    "OtaSpecs",
    "ParasiticMode",
    "SizingResult",
    "SynthesisOutcome",
    "TraditionalFlow",
    "format_table1",
    "generic_035",
    "generic_060",
    "generic_080",
    "run_case",
    "__version__",
]
