"""Crash-safe run journal and deterministic resume.

Long-running drivers — synthesis rounds, Monte-Carlo shards, Table-1
batches — die to crashes, OOM kills and preemption; without durability a
killed ``table1 --jobs 8`` loses hours of work.  A :class:`RunJournal`
makes every *completed unit of work* durable the moment it finishes:

* the journal is an **append-only JSONL file** (``journal.jsonl`` inside
  a run directory) with a schema-versioned header line
  (``repro-journal-v1``) recording the run kind and its configuration
  fingerprint;
* each unit append is written in one call, flushed and fsynced before
  the driver moves on, so a kill at any instant loses at most the unit
  in flight — never a journaled one;
* resuming (:meth:`RunJournal.resume`) validates the kind/configuration
  against the original run (mixing results from different specs is
  refused with :class:`~repro.errors.JournalError`), self-heals a torn
  trailing line (the one partial-write state a hard kill can leave), and
  hands completed units back to the driver so it skips straight to the
  remaining work;
* :meth:`shutdown_guard` installs SIGINT/SIGTERM handlers that convert
  the signal into a *clean* stop: drivers poll :meth:`check_interrupt`
  at unit boundaries, drain in-flight workers, journal their results and
  raise :class:`~repro.errors.RunInterrupted` — Ctrl-C produces a
  resumable checkpoint, not a stack trace.

Determinism: a unit's payload is the pickled result object itself, so a
resumed run recombines *exactly* the bytes an uninterrupted run would
have produced (``CaseResult.fingerprint()`` and Monte-Carlo statistics
are bit-identical for any kill point and worker count — pinned by
``tests/test_journal.py`` and the CI kill-resume smoke job).  The
``journal.write`` and ``process.kill`` fault sites
(:mod:`repro.resilience.faults`) make the whole kill-resume matrix
deterministically testable.
"""

from __future__ import annotations

import base64
import io
import json
import os
import pickle
import signal
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro import telemetry
from repro.errors import JournalError, RunInterrupted
from repro.ioutil import fsync_directory
from repro.resilience import faults

#: Schema tag of the journal container (header line of every file).
JOURNAL_SCHEMA = "repro-journal-v1"

#: File name of the journal inside a run directory.
JOURNAL_FILENAME = "journal.jsonl"


def encode_payload(payload: Any) -> str:
    """Pickle ``payload`` into a JSON-safe ASCII string."""
    return base64.b64encode(
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(encoded: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(encoded.encode("ascii")))


def _normalize_config(config: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Round-trip ``config`` through JSON so tuples/ints normalise the
    same way whether they come from the caller or from a journal file."""
    if config is None:
        return {}
    try:
        return json.loads(json.dumps(config, sort_keys=True))
    except (TypeError, ValueError) as error:
        raise JournalError(
            f"journal configuration must be JSON-serialisable: {error}"
        ) from error


class RunJournal:
    """Append-only, crash-safe record of one run's completed units.

    Use :meth:`create` for a fresh run and :meth:`resume` to continue a
    journaled one; the constructor is internal.  Thread-unsafe by design
    (one driver owns the journal; pool workers never touch it — results
    are journaled parent-side).
    """

    def __init__(
        self,
        run_dir: str,
        kind: str,
        config: Dict[str, Any],
        resumed_units: Optional[Dict[str, Dict[str, Any]]] = None,
        next_seq: int = 0,
        complete: bool = False,
    ):
        self.run_dir = run_dir
        self.kind = kind
        self.config = config
        self.path = os.path.join(run_dir, JOURNAL_FILENAME)
        self._units: Dict[str, Dict[str, Any]] = resumed_units or {}
        self._decoded: Dict[str, Any] = {}
        self._next_seq = next_seq
        self._complete = complete
        self._resumed_unit_count = len(self._units)
        self._handle: Optional[io.TextIOWrapper] = None
        self._interrupt_signal: Optional[str] = None

    # -- Construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        run_dir: str,
        kind: str,
        config: Optional[Dict[str, Any]] = None,
    ) -> "RunJournal":
        """Start a fresh journal under ``run_dir`` (created if missing).

        Refuses to overwrite an existing journal — a stale run directory
        holds state someone may want to resume; delete it explicitly.
        """
        config = _normalize_config(config)
        path = os.path.join(run_dir, JOURNAL_FILENAME)
        if os.path.exists(path):
            raise JournalError(
                f"journal already exists at {path!r}; resume it with "
                f"--resume or remove the run directory to start over"
            )
        os.makedirs(run_dir, exist_ok=True)
        journal = cls(run_dir, kind, config)
        journal._append(
            {
                "type": "header",
                "schema": JOURNAL_SCHEMA,
                "kind": kind,
                "config": config,
                "pid": os.getpid(),
            }
        )
        fsync_directory(run_dir)
        telemetry.event("journal.created", kind=kind, path=path)
        return journal

    @classmethod
    def resume(
        cls,
        run_dir: str,
        kind: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> "RunJournal":
        """Reopen the journal under ``run_dir`` and load completed units.

        Validates the schema, the run ``kind`` and (when given) the run
        ``config`` against the header — resuming with a different
        configuration would mix incompatible results, so it raises
        :class:`~repro.errors.JournalError` instead.  A torn trailing
        line (hard kill mid-append) is truncated away; any other
        malformed line is an error.
        """
        path = os.path.join(run_dir, JOURNAL_FILENAME)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise JournalError(
                f"no journal to resume at {path!r}: {error}"
            ) from error
        header, units, next_seq, complete, keep = cls._parse(raw, path)
        if kind is not None and header.get("kind") != kind:
            raise JournalError(
                f"{path!r} journals a {header.get('kind')!r} run, not a "
                f"{kind!r} run"
            )
        if config is not None:
            wanted = _normalize_config(config)
            if header.get("config") != wanted:
                raise JournalError(
                    f"{path!r} was recorded with a different run "
                    f"configuration; refusing to resume (journaled: "
                    f"{header.get('config')!r}, requested: {wanted!r})"
                )
        if len(keep) < len(raw):
            # Self-heal the torn tail so the file is valid JSONL again.
            with open(path, "r+b") as handle:
                handle.truncate(len(keep))
            telemetry.event(
                "journal.torn_tail_truncated", path=path,
                dropped_bytes=len(raw) - len(keep),
            )
        journal = cls(
            run_dir,
            header.get("kind", ""),
            header.get("config", {}),
            resumed_units=units,
            next_seq=next_seq,
            complete=complete,
        )
        telemetry.event(
            "journal.resumed", kind=journal.kind, path=path,
            units=len(units), complete=complete,
        )
        telemetry.count("journal.resumed_units", len(units))
        return journal

    @staticmethod
    def _parse(raw: bytes, path: str):
        """Parse journal bytes -> (header, units, next_seq, complete, keep).

        Every append is one newline-terminated line written in a single
        flush+fsync, so the only partial state a hard kill can leave is
        a newline-less tail: ``keep`` is the prefix up to the last
        newline and everything past it is dropped.  A *terminated* line
        that fails to parse means external corruption and raises.
        """
        header: Optional[Dict[str, Any]] = None
        units: Dict[str, Dict[str, Any]] = {}
        next_seq = 0
        complete = False
        keep = raw[: raw.rfind(b"\n") + 1]
        for line_number, line in enumerate(
            keep.decode("utf-8").split("\n")[:-1], start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise JournalError(
                    f"{path}:{line_number}: malformed journal line: {error}"
                ) from error
            if header is None:
                if (
                    record.get("type") != "header"
                    or record.get("schema") != JOURNAL_SCHEMA
                ):
                    raise JournalError(
                        f"{path}: not a {JOURNAL_SCHEMA} journal "
                        f"(first line: {record!r})"
                    )
                header = record
            elif record.get("type") == "unit":
                units[record["key"]] = record
                next_seq = max(next_seq, int(record.get("seq", -1)) + 1)
            elif record.get("type") == "complete":
                complete = True
            # Unknown record types are skipped (forward compatibility).
        if header is None:
            raise JournalError(
                f"{path}: no journal header survived (empty or fully torn "
                f"file)"
            )
        return header, units, next_seq, complete, keep

    # -- Durable append ----------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, payload: Any, **meta: Any) -> None:
        """Durably journal one completed unit of work.

        The unit is on disk (written, flushed, fsynced) before this
        returns; ``process.kill`` then fires, making "killed at this
        journal boundary" a deterministic test point.  Re-recording an
        existing key is refused — units are immutable history.
        """
        if key in self._units:
            raise JournalError(f"unit {key!r} is already journaled")
        faults.maybe_raise("journal.write")
        record = {
            "type": "unit",
            "seq": self._next_seq,
            "key": key,
            "payload": encode_payload(payload),
        }
        for name, value in meta.items():
            record[name] = value
        self._append(record)
        self._next_seq += 1
        self._units[key] = record
        self._decoded[key] = payload
        telemetry.count("journal.appends")
        if faults.active():
            faults.maybe_kill("process.kill")

    def complete(self, **meta: Any) -> None:
        """Append the run-complete marker (idempotent)."""
        if self._complete:
            return
        record = {"type": "complete", "seq": self._next_seq, "units": len(self._units)}
        record.update(meta)
        self._append(record)
        self._next_seq += 1
        self._complete = True
        telemetry.event("journal.complete", units=len(self._units))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- Reading back ------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        return self._complete

    @property
    def resumed_unit_count(self) -> int:
        """Units loaded from disk at resume time (0 for a fresh run)."""
        return self._resumed_unit_count

    def __len__(self) -> int:
        return len(self._units)

    def keys(self) -> List[str]:
        return list(self._units)

    def has(self, key: str) -> bool:
        return key in self._units

    def result(self, key: str) -> Any:
        """The journaled payload for ``key`` (unpickled, cached)."""
        if key not in self._decoded:
            self._decoded[key] = decode_payload(self._units[key]["payload"])
        return self._decoded[key]

    def result_or_none(self, key: str) -> Optional[Any]:
        if key not in self._units:
            return None
        return self.result(key)

    def unit_meta(self, key: str) -> Dict[str, Any]:
        """The journaled unit record for ``key`` minus its payload —
        the ``seq`` number and any keyword metadata :meth:`record` took
        (drivers use this to cross-check a unit's identity on resume)."""
        record = dict(self._units[key])
        record.pop("payload", None)
        return record

    # -- Graceful shutdown -------------------------------------------------

    @property
    def interrupted(self) -> bool:
        return self._interrupt_signal is not None

    def check_interrupt(self, site: str) -> None:
        """Raise :class:`~repro.errors.RunInterrupted` at ``site`` if a
        shutdown signal arrived (drivers call this at unit boundaries)."""
        if self._interrupt_signal is None:
            return
        telemetry.event(
            "journal.interrupted", site=site, signal=self._interrupt_signal
        )
        raise RunInterrupted(
            f"run interrupted by {self._interrupt_signal} at {site!r}; "
            f"{len(self._units)} completed unit(s) journaled in "
            f"{self.run_dir!r}",
            site=site,
            signal_name=self._interrupt_signal,
            journal=self,
        )

    @contextmanager
    def shutdown_guard(self) -> Iterator["RunJournal"]:
        """Convert SIGINT/SIGTERM into a clean checkpointed stop.

        While active, the first signal sets the interrupt flag (drivers
        stop at the next unit boundary via :meth:`check_interrupt`); a
        second SIGINT falls through to the previous handler (normally
        ``KeyboardInterrupt``) for users who really mean *now*.  Only
        the main thread can install signal handlers; elsewhere the guard
        is a no-op and the run relies on the default handlers.
        """
        if threading.current_thread() is not threading.main_thread():
            yield self
            return
        previous = {}

        def handler(signum: int, _frame: Any) -> None:
            name = signal.Signals(signum).name
            if self._interrupt_signal is not None and signum == signal.SIGINT:
                original = previous.get(signal.SIGINT)
                if callable(original):
                    original(signum, _frame)
                return
            self._interrupt_signal = name

        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, handler)
        try:
            yield self
        finally:
            for sig, original in previous.items():
                signal.signal(sig, original)


def ignore_sigint() -> None:
    """Process-pool worker initializer: the parent owns shutdown.

    Ctrl-C sends SIGINT to the whole foreground process group; without
    this the workers die first and the parent sees a useless
    ``BrokenProcessPool`` instead of draining them into a checkpoint.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
