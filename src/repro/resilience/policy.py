"""Declarative solver escalation policies.

The DC operating-point solvers used to hard-code their safety nets as
nested control flow (direct Newton, then gmin stepping, then source
stepping), and a failure threw away everything learned along the way.
A :class:`SolverPolicy` makes the ladder explicit data: an ordered tuple
of strategy *rungs*, each of which attempts a full solve on a solver
*backend* and records what happened in a structured
:class:`ConvergenceReport`.  The report is attached both to successful
solutions (``DcSolution.convergence``) and to the final
:class:`~repro.errors.ConvergenceError` when every rung fails — residual
history, achieved gmin and the worst-residual nodes survive the failure.

A backend is anything with the small duck-typed surface both engines
implement (:class:`~repro.analysis.stamps.StampProgram` for the compiled
engine, a thin adapter over the legacy stamping in
:mod:`repro.analysis.dcop`):

* ``circuit_name`` — for messages;
* ``initial_guess()`` / ``zeros()`` — start vectors;
* ``newton(start, gmin, source_scale, max_iterations)`` returning
  ``(voltages, converged, iterations, residual_norm)``;
* ``worst_residual_nodes(voltages, count)`` — failure forensics.

The rung arithmetic reproduces the previous hard-coded ladders exactly
(same stages, same iteration caps, same restart points), so the happy
path is numerically untouched — golden-equivalence tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConvergenceError
from repro.telemetry import metrics

#: The classic gmin relaxation ladder (large shunt -> fully removed).
DEFAULT_GMIN_SEQUENCE: Tuple[float, ...] = (
    1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12, 0.0
)


@dataclass
class RungRecord:
    """One Newton attempt inside one escalation rung."""

    strategy: str
    stage: str
    converged: bool
    iterations: int
    residual_norm: float

    def format(self) -> str:
        mark = "ok" if self.converged else "FAILED"
        return (
            f"{self.strategy:<16} {self.stage:<12} iters={self.iterations:<4d} "
            f"residual={self.residual_norm:.3e}  {mark}"
        )


@dataclass
class ConvergenceReport:
    """Structured record of one escalation-ladder run.

    Populated for successful solves (``converged=True``, ``strategy`` names
    the winning rung) and attached to :class:`~repro.errors.ConvergenceError`
    when the ladder is exhausted (``worst_nodes`` then carries the nodes
    with the largest KCL residual at the last iterate).
    """

    circuit: str
    converged: bool = False
    strategy: Optional[str] = None
    achieved_gmin: float = 0.0
    rungs: List[RungRecord] = field(default_factory=list)
    worst_nodes: List[Tuple[str, float]] = field(default_factory=list)
    engine_fallback: Optional[str] = None
    final_voltages: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def iterations(self) -> int:
        """Total Newton iterations across every attempted rung."""
        return sum(record.iterations for record in self.rungs)

    def residual_history(self) -> List[float]:
        """Final residual norm of every attempted stage, in order."""
        return [record.residual_norm for record in self.rungs]

    def add(
        self,
        strategy: str,
        stage: str,
        converged: bool,
        iterations: int,
        residual_norm: float,
    ) -> None:
        self.rungs.append(
            RungRecord(strategy, stage, converged, iterations, residual_norm)
        )

    def summary(self) -> str:
        """Human-readable dump (the CLI prints this on failure)."""
        status = (
            f"converged via {self.strategy!r}" if self.converged
            else "NOT CONVERGED (ladder exhausted)"
        )
        lines = [
            f"convergence report for {self.circuit!r}: {status}",
            f"  total Newton iterations: {self.iterations}, "
            f"achieved gmin: {self.achieved_gmin:g}",
        ]
        if self.engine_fallback is not None:
            lines.append(f"  compiled engine fell back to legacy: "
                         f"{self.engine_fallback}")
        for record in self.rungs:
            lines.append("  " + record.format())
        if self.worst_nodes:
            worst = ", ".join(
                f"{name}={residual:.3e}A" for name, residual in self.worst_nodes
            )
            lines.append(f"  worst-residual nodes: {worst}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DirectNewton:
    """Straight two-stage Newton from the initial guess.

    Most well-posed circuits converge directly, making any continuation
    pure overhead; the per-stage cap keeps a hopeless direct attempt from
    eating the whole iteration budget before the ladder escalates.
    """

    name: str = "direct-newton"
    gmins: Tuple[float, ...] = (1e-12, 0.0)
    iteration_cap: int = 50

    def attempt(
        self, backend: Any, max_iterations: int, report: ConvergenceReport
    ) -> Optional[Tuple[np.ndarray, float]]:
        voltages = backend.initial_guess()
        for gmin in self.gmins:
            voltages, ok, iterations, norm = backend.newton(
                voltages, gmin,
                max_iterations=min(max_iterations, self.iteration_cap),
            )
            report.add(self.name, f"gmin={gmin:g}", ok, iterations, norm)
            if not ok:
                report.final_voltages = voltages
                return None
        return voltages, self.gmins[-1]


@dataclass(frozen=True, eq=False)
class WarmStart:
    """Direct Newton seeded from a previously converged solution.

    Prepended to the compiled ladder when a warm-start session (see
    :mod:`repro.analysis.warmstart`) holds node voltages for a
    structurally matching circuit — e.g. the previous synthesis round's
    verification bench.  A stale seed simply fails this rung and the
    standard ladder takes over from its own initial guess, so the result
    is identical either way; only the iteration count changes.
    """

    seed: np.ndarray
    name: str = "warm-start"
    gmins: Tuple[float, ...] = (1e-12, 0.0)
    iteration_cap: int = 50

    def attempt(
        self, backend: Any, max_iterations: int, report: ConvergenceReport
    ) -> Optional[Tuple[np.ndarray, float]]:
        voltages = np.array(self.seed, dtype=float, copy=True)
        for gmin in self.gmins:
            voltages, ok, iterations, norm = backend.newton(
                voltages, gmin,
                max_iterations=min(max_iterations, self.iteration_cap),
            )
            report.add(self.name, f"gmin={gmin:g}", ok, iterations, norm)
            if not ok:
                report.final_voltages = voltages
                return None
        return voltages, self.gmins[-1]


@dataclass(frozen=True, eq=False)
class ChordNewton:
    """Direct Newton with LU factorization reuse between iterations.

    Drives :meth:`~repro.analysis.stamps.StampProgram.newton_chord`:
    the Jacobian is factored once per stretch and only refactored on
    residual stall or reuse expiry, trading the per-iteration dense
    solve for a cheap back-substitution.  Sits in front of the standard
    ladder under the opt-in ``newton`` engine switch — chord iterates
    reach the same fixed point along a different path, so a failure
    here escalates to :class:`DirectNewton` and nothing is lost.  With
    ``seed`` set this doubles as the warm-start variant (same contract
    as :class:`WarmStart`).  A backend without ``newton_chord`` (the
    legacy adapter) skips the rung entirely.
    """

    seed: Optional[np.ndarray] = None
    name: str = "chord-newton"
    gmins: Tuple[float, ...] = (1e-12, 0.0)
    iteration_cap: int = 50
    max_reuse: int = 8

    def attempt(
        self, backend: Any, max_iterations: int, report: ConvergenceReport
    ) -> Optional[Tuple[np.ndarray, float]]:
        solver = getattr(backend, "newton_chord", None)
        if solver is None:
            return None
        if self.seed is not None:
            voltages = np.array(self.seed, dtype=float, copy=True)
        else:
            voltages = backend.initial_guess()
        for gmin in self.gmins:
            voltages, ok, iterations, norm = solver(
                voltages, gmin,
                max_iterations=min(max_iterations, self.iteration_cap),
                max_reuse=self.max_reuse,
            )
            report.add(self.name, f"gmin={gmin:g}", ok, iterations, norm)
            if not ok:
                report.final_voltages = voltages
                return None
        return voltages, self.gmins[-1]


@dataclass(frozen=True)
class GminRamp:
    """Gmin continuation: relax a node-to-ground shunt geometrically.

    Succeeds only when the fully relaxed (gmin = 0) system converges; a
    ramp stranded at a nonzero shunt hands over to the next rung.
    """

    sequence: Tuple[float, ...] = DEFAULT_GMIN_SEQUENCE
    name: str = "gmin-ramp"

    def attempt(
        self, backend: Any, max_iterations: int, report: ConvergenceReport
    ) -> Optional[Tuple[np.ndarray, float]]:
        voltages = backend.initial_guess()
        converged = False
        achieved = self.sequence[0] if self.sequence else 0.0
        for gmin in self.sequence:
            voltages, converged, iterations, norm = backend.newton(
                voltages, gmin, max_iterations=max_iterations
            )
            report.add(self.name, f"gmin={gmin:g}", converged, iterations, norm)
            if not converged:
                break
            achieved = gmin
        if converged and achieved == 0.0:
            return voltages, 0.0
        report.final_voltages = voltages
        return None


@dataclass(frozen=True)
class SourceStepping:
    """Ramp the supplies from a cold start, then drop the residual gmin."""

    scales: Tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
    gmin: float = 1e-12
    name: str = "source-stepping"

    def attempt(
        self, backend: Any, max_iterations: int, report: ConvergenceReport
    ) -> Optional[Tuple[np.ndarray, float]]:
        voltages = backend.zeros()
        for scale in self.scales:
            voltages, ok, iterations, norm = backend.newton(
                voltages, self.gmin, source_scale=scale,
                max_iterations=max_iterations,
            )
            report.add(self.name, f"scale={scale:g}", ok, iterations, norm)
            if not ok:
                report.final_voltages = voltages
                return None
        voltages, ok, iterations, norm = backend.newton(
            voltages, 0.0, max_iterations=max_iterations
        )
        report.add(self.name, "gmin=0", ok, iterations, norm)
        if ok:
            return voltages, 0.0
        report.final_voltages = voltages
        return None


@dataclass(frozen=True)
class SolverPolicy:
    """An ordered ladder of solve strategies.

    :meth:`run` tries each rung in turn; the first success returns with a
    populated report, exhaustion raises :class:`ConvergenceError` with the
    same report (worst-residual nodes included) attached.
    """

    rungs: Tuple[Any, ...]

    def run(
        self,
        backend: Any,
        max_iterations: int = 200,
        deadline: Optional[Any] = None,
    ) -> Tuple[np.ndarray, ConvergenceReport]:
        report = ConvergenceReport(circuit=backend.circuit_name)
        for rung_index, rung in enumerate(self.rungs):
            if deadline is not None:
                deadline.check(f"solver.{rung.name}", circuit=backend.circuit_name)
            outcome = rung.attempt(backend, max_iterations, report)
            if outcome is not None:
                voltages, gmin = outcome
                report.converged = True
                report.strategy = rung.name
                report.achieved_gmin = gmin
                report.final_voltages = None
                if telemetry.enabled() or metrics.enabled():
                    _record_telemetry(report, rung_index)
                return voltages, report
        if telemetry.enabled() or metrics.enabled():
            _record_telemetry(report, len(self.rungs) - 1, failed=True)
        if report.final_voltages is not None:
            report.worst_nodes = backend.worst_residual_nodes(
                report.final_voltages
            )
            report.final_voltages = None
        raise ConvergenceError(
            f"DC analysis of {backend.circuit_name!r} failed after "
            f"{report.iterations} Newton iterations "
            f"({len(self.rungs)} strategies exhausted)",
            report=report,
        )


def _record_telemetry(
    report: ConvergenceReport, rung_index: int, failed: bool = False
) -> None:
    """Fold one escalation-ladder run into the active tracer."""
    if metrics.enabled():
        metrics.observe("newton.iterations", report.iterations)
    telemetry.count("solver.solves")
    telemetry.count("solver.newton_iterations", report.iterations)
    attempts: dict = {}
    for record in report.rungs:
        attempts[record.strategy] = attempts.get(record.strategy, 0) + 1
    for strategy, n in attempts.items():
        telemetry.count(f"solver.rung.{strategy}", n)
    if rung_index > 0:
        telemetry.count("solver.escalations")
    if failed:
        telemetry.count("solver.failures")
    if report.rungs:
        telemetry.gauge("solver.last_residual", report.rungs[-1].residual_norm)


#: The compiled engine's default ladder (fast direct attempt first).
COMPILED_POLICY = SolverPolicy(
    rungs=(DirectNewton(), GminRamp(), SourceStepping())
)

#: The legacy engine's ladder (no direct fast path, as before).
LEGACY_POLICY = SolverPolicy(rungs=(GminRamp(), SourceStepping()))


def ramp_policy(sequence: Tuple[float, ...]) -> SolverPolicy:
    """Ladder for a caller-pinned gmin sequence (no direct fast path)."""
    return SolverPolicy(rungs=(GminRamp(tuple(sequence)), SourceStepping()))


def warm_policy(seed: np.ndarray) -> SolverPolicy:
    """The compiled ladder with a warm-start rung bolted on front.

    Same terminal behaviour as :data:`COMPILED_POLICY` (the full ladder
    still runs if the seed misleads Newton), but a good seed converges in
    a handful of iterations before :class:`DirectNewton` would even
    start."""
    return SolverPolicy(rungs=(WarmStart(seed),) + COMPILED_POLICY.rungs)


def chord_policy() -> SolverPolicy:
    """The compiled ladder with a factorization-reuse rung in front.

    Selected by the opt-in ``newton`` engine switch
    (:data:`repro.analysis.engine.newton_engine`); the full standard
    ladder still backs the chord attempt, so convergence is never worse
    than :data:`COMPILED_POLICY`."""
    return SolverPolicy(rungs=(ChordNewton(),) + COMPILED_POLICY.rungs)


def warm_chord_policy(seed: np.ndarray) -> SolverPolicy:
    """Warm-start seeded chord rung in front of the compiled ladder."""
    return SolverPolicy(
        rungs=(ChordNewton(seed=seed),) + COMPILED_POLICY.rungs
    )
