"""Resilient-runtime subsystem: escalation policies, budgets, fault injection.

The layout-oriented flow (paper Fig. 1b) is an iterative fixed-point loop
in which every stage can fail — Newton non-convergence, singular MNA
matrices, unsatisfiable sizing specs, worker death during Monte-Carlo.
This package turns those failures from bare exceptions into a managed
degradation architecture:

* :mod:`repro.resilience.policy` — declarative solver escalation ladders
  (:class:`SolverPolicy`) whose every rung is recorded in a structured
  :class:`ConvergenceReport`;
* :mod:`repro.resilience.budget` — wall-clock :class:`Deadline` and
  :class:`Budget` objects threaded through synthesis, sizing and
  Monte-Carlo so runaway cases abort at clean boundaries with
  :class:`~repro.errors.BudgetExceededError`;
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  registry so every degradation path is testable without contriving
  pathological circuits;
* :mod:`repro.resilience.journal` — a crash-safe, append-only run
  journal (:class:`RunJournal`, schema ``repro-journal-v1``) plus
  SIGINT/SIGTERM shutdown guards, giving every long-running driver
  durable checkpoints and deterministic ``--resume``.
"""

from repro.resilience.budget import Budget, Deadline
from repro.resilience.journal import JOURNAL_SCHEMA, RunJournal, ignore_sigint
from repro.resilience.policy import (
    DEFAULT_GMIN_SEQUENCE,
    ConvergenceReport,
    DirectNewton,
    GminRamp,
    RungRecord,
    SolverPolicy,
    SourceStepping,
)

__all__ = [
    "Budget",
    "ConvergenceReport",
    "Deadline",
    "DEFAULT_GMIN_SEQUENCE",
    "DirectNewton",
    "GminRamp",
    "JOURNAL_SCHEMA",
    "RunJournal",
    "RungRecord",
    "SolverPolicy",
    "SourceStepping",
    "ignore_sigint",
]
