"""Deterministic fault-injection registry.

Degradation paths (solver escalation, Monte-Carlo shard resubmission,
synthesis-round fallback, compiled-to-legacy engine hand-over) are hard to
reach with real inputs: they need a singular matrix on exactly the third
linear solve, or a worker process that dies on shard 2 but not on its
resubmission.  This module lets tests *declare* such failures at named
sites instead of contriving pathological circuits:

    with faults.inject("solve.linear", error=AnalysisError("injected")):
        solve_dc(circuit)        # first linear solve fails, ladder escalates

Instrumented sites (the ``site`` strings accepted by :func:`inject`):

===================== =========================================================
``solve.linear``      every Newton linear solve (legacy and compiled); the
                      injected error is handled like a singular matrix, so
                      the current escalation rung fails and the ladder moves on
``model.eval``        the compiled engine's batched MOS model evaluation;
                      ``action="nan"`` poisons the device currents with NaN,
                      any other action raises the injected error
``engine.compiled``   the compiled-engine dispatch in ``solve_dc``; an
                      injected error exercises the legacy-engine fallback
``mc.worker``         Monte-Carlo shard submission (``index`` = shard); a
                      firing makes the worker process die (``os._exit``),
                      exercising shard resubmission and in-process fallback
``synthesis.sizing``  the sizing call of a synthesis round (``index`` = round)
``synthesis.layout``  the layout-tool call of a synthesis round
                      (``index`` = round)
===================== =========================================================

Every instrumented site is guarded by :func:`active`, a single module-level
truthiness test, so the registry costs nothing when no fault is armed.
Counters live in the :class:`Fault` object itself and are torn down with the
``with`` block, making every injection deterministic and repeatable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import AnalysisError

#: Armed faults, in arming order.  Instrumented sites consult this list via
#: :func:`fire`; an empty list short-circuits every check.
_ACTIVE: List["Fault"] = []


@dataclass
class Fault:
    """One armed fault.

    ``site`` names the instrumented location; ``index`` (when given)
    restricts the fault to one shard / round / call index.  The fault fires
    on the ``at``-th matching hit and on every subsequent hit until it has
    fired ``times`` times.  ``action`` selects what the site does with a
    firing: ``"raise"`` (the default) raises :attr:`error`, ``"nan"`` and
    ``"crash"`` are site-specific degradations (NaN device currents,
    worker-process death).
    """

    site: str
    error: Optional[BaseException] = None
    at: int = 1
    times: int = 1
    index: Optional[int] = None
    action: str = "raise"
    hits: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def exception(self) -> BaseException:
        """The exception a ``raise``-action firing should raise."""
        if self.error is not None:
            return self.error
        return AnalysisError(f"injected fault at {self.site!r}")


def active() -> bool:
    """True when at least one fault is armed (cheap hot-path guard)."""
    return bool(_ACTIVE)


def fire(site: str, index: Optional[int] = None) -> Optional[Fault]:
    """Consult the registry at an instrumented site.

    Increments the hit counter of every armed fault matching ``site`` (and
    ``index`` when the fault pins one) and returns the first fault that is
    due to fire, or ``None``.  The caller decides how to degrade based on
    :attr:`Fault.action`.
    """
    if not _ACTIVE:
        return None
    for fault in _ACTIVE:
        if fault.site != site:
            continue
        if fault.index is not None and index is not None and fault.index != index:
            continue
        fault.hits += 1
        if fault.hits >= fault.at and fault.fired < fault.times:
            fault.fired += 1
            return fault
    return None


def maybe_raise(site: str, index: Optional[int] = None) -> None:
    """Raise the armed fault's error if one fires at ``site``.

    Convenience for sites whose only degradation is an exception.
    """
    fault = fire(site, index)
    if fault is not None:
        raise fault.exception()


@contextmanager
def inject(
    site: str,
    error: Optional[BaseException] = None,
    at: int = 1,
    times: int = 1,
    index: Optional[int] = None,
    action: str = "raise",
) -> Iterator[Fault]:
    """Arm a fault for the duration of the ``with`` block.

    Yields the :class:`Fault` so tests can assert on ``fired`` afterwards.
    """
    fault = Fault(
        site=site, error=error, at=at, times=times, index=index, action=action
    )
    _ACTIVE.append(fault)
    try:
        yield fault
    finally:
        _ACTIVE.remove(fault)
