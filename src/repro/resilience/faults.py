"""Deterministic fault-injection registry.

Degradation paths (solver escalation, Monte-Carlo shard resubmission,
synthesis-round fallback, compiled-to-legacy engine hand-over) are hard to
reach with real inputs: they need a singular matrix on exactly the third
linear solve, or a worker process that dies on shard 2 but not on its
resubmission.  This module lets tests *declare* such failures at named
sites instead of contriving pathological circuits:

    with faults.inject("solve.linear", error=AnalysisError("injected")):
        solve_dc(circuit)        # first linear solve fails, ladder escalates

Instrumented sites (the ``site`` strings accepted by :func:`inject`):

===================== =========================================================
``solve.linear``      every Newton linear solve (legacy and compiled); the
                      injected error is handled like a singular matrix, so
                      the current escalation rung fails and the ladder moves on
``model.eval``        the compiled engine's batched MOS model evaluation;
                      ``action="nan"`` poisons the device currents with NaN,
                      any other action raises the injected error
``engine.compiled``   the compiled-engine dispatch in ``solve_dc``; an
                      injected error exercises the legacy-engine fallback
``mc.worker``         Monte-Carlo shard submission (``index`` = shard); a
                      firing makes the worker process die (``os._exit``),
                      exercising shard resubmission and in-process fallback
``batch.worker``      batch-task submission (``index`` = task); a firing
                      makes the task's worker process die, exercising the
                      batch driver's resubmission/in-process recovery
``synthesis.sizing``  the sizing call of a synthesis round (``index`` = round)
``synthesis.layout``  the layout-tool call of a synthesis round
                      (``index`` = round)
``journal.write``     the start of every :meth:`RunJournal.record
                      <repro.resilience.journal.RunJournal.record>` append;
                      an injected error simulates a failed journal write
``process.kill``      every *journal boundary* — fired after a unit has been
                      durably appended.  ``action="crash"`` hard-kills the
                      process (``os._exit(137)``); the default action raises
                      :class:`SimulatedKill` (a ``BaseException``) so tests
                      can simulate process death in-process: nothing in the
                      library catches it, and the on-disk journal is exactly
                      what a real kill would have left
===================== =========================================================

For kill-resume tests that need a *real* process death (the CI smoke
job), faults can be armed from the environment: :func:`arm_from_env`
parses ``REPRO_FAULTS`` (``site[:key=value,...]`` entries separated by
``;``, e.g. ``process.kill:at=2,action=crash``) and is called by the CLI
entry point before any command runs.

Every instrumented site is guarded by :func:`active`, a single module-level
truthiness test, so the registry costs nothing when no fault is armed.
Counters live in the :class:`Fault` object itself and are torn down with the
``with`` block, making every injection deterministic and repeatable.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Optional

from repro.errors import AnalysisError

#: Armed faults, in arming order.  Instrumented sites consult this list via
#: :func:`fire`; an empty list short-circuits every check.
_ACTIVE: List["Fault"] = []

#: Exit code of an ``action="crash"`` process kill (mirrors SIGKILL's
#: conventional 128+9 so the CI smoke job can assert on it).
KILL_EXIT_CODE = 137

#: Callbacks invoked (best-effort) before an ``action="crash"`` hard
#: kill.  ``os._exit`` skips ``finally`` blocks and ``atexit`` handlers,
#: so resources whose lifetime outlives the process — shared-memory
#: segments, most notably — register an emergency release here.  Hooks
#: must be idempotent and must not raise.
_KILL_HOOKS: List[object] = []


def register_kill_hook(hook) -> None:
    """Register ``hook()`` to run before a hard process kill."""
    if hook not in _KILL_HOOKS:
        _KILL_HOOKS.append(hook)


def unregister_kill_hook(hook) -> None:
    try:
        _KILL_HOOKS.remove(hook)
    except ValueError:
        pass


class SimulatedKill(BaseException):
    """In-process stand-in for a hard process kill.

    Derives from :class:`BaseException` so no library ``except Exception``
    handler can absorb it — the stack unwinds exactly as ``os._exit``
    would have cut it, leaving the on-disk journal in the same state.
    """


@dataclass
class Fault:
    """One armed fault.

    ``site`` names the instrumented location; ``index`` (when given)
    restricts the fault to one shard / round / call index.  The fault fires
    on the ``at``-th matching hit and on every subsequent hit until it has
    fired ``times`` times.  ``action`` selects what the site does with a
    firing: ``"raise"`` (the default) raises :attr:`error`, ``"nan"`` and
    ``"crash"`` are site-specific degradations (NaN device currents,
    worker-process death).
    """

    site: str
    error: Optional[BaseException] = None
    at: int = 1
    times: int = 1
    index: Optional[int] = None
    action: str = "raise"
    hits: int = field(default=0, repr=False)
    fired: int = field(default=0, repr=False)

    def exception(self) -> BaseException:
        """The exception a ``raise``-action firing should raise."""
        if self.error is not None:
            return self.error
        return AnalysisError(f"injected fault at {self.site!r}")


def active() -> bool:
    """True when at least one fault is armed (cheap hot-path guard)."""
    return bool(_ACTIVE)


def fire(site: str, index: Optional[int] = None) -> Optional[Fault]:
    """Consult the registry at an instrumented site.

    Increments the hit counter of every armed fault matching ``site`` (and
    ``index`` when the fault pins one) and returns the first fault that is
    due to fire, or ``None``.  The caller decides how to degrade based on
    :attr:`Fault.action`.
    """
    if not _ACTIVE:
        return None
    for fault in _ACTIVE:
        if fault.site != site:
            continue
        if fault.index is not None and index is not None and fault.index != index:
            continue
        fault.hits += 1
        if fault.hits >= fault.at and fault.fired < fault.times:
            fault.fired += 1
            return fault
    return None


def maybe_raise(site: str, index: Optional[int] = None) -> None:
    """Raise the armed fault's error if one fires at ``site``.

    Convenience for sites whose only degradation is an exception.
    """
    fault = fire(site, index)
    if fault is not None:
        raise fault.exception()


def maybe_kill(site: str = "process.kill", index: Optional[int] = None) -> None:
    """Die at ``site`` if an armed kill fault fires.

    ``action="crash"`` exits the process uncleanly (a genuine kill: no
    atexit handlers, no finally blocks); any other action raises
    :class:`SimulatedKill` so in-process tests can walk the kill-resume
    matrix without spawning subprocesses.
    """
    fault = fire(site, index)
    if fault is None:
        return
    if fault.action == "crash":
        for hook in list(_KILL_HOOKS):
            try:
                hook()
            except Exception:  # noqa: BLE001 - dying anyway; best effort
                pass
        os._exit(KILL_EXIT_CODE)
    raise SimulatedKill(f"simulated process kill at {site!r}")


def arm(fault: Fault) -> Fault:
    """Arm ``fault`` persistently (no scope; cleared by :func:`disarm_all`)."""
    _ACTIVE.append(fault)
    return fault


def disarm_all() -> None:
    """Clear every armed fault (scoped and persistent)."""
    _ACTIVE.clear()


def arm_from_env(environ: Optional[Mapping[str, str]] = None) -> List[Fault]:
    """Arm faults described by the ``REPRO_FAULTS`` environment variable.

    Format: ``site[:key=value,...]`` entries separated by ``;``.  Keys
    are the integer fields ``at``/``times``/``index`` and the string
    field ``action``.  Example::

        REPRO_FAULTS="process.kill:at=2,action=crash"

    kills the process (exit :data:`KILL_EXIT_CODE`) at the second journal
    boundary — the lever the CI kill-resume smoke job pulls.  Returns the
    armed faults (empty when the variable is unset).
    """
    if environ is None:
        environ = os.environ
    spec = environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return []
    armed: List[Fault] = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        site, _, options = entry.partition(":")
        fields = {}
        for option in filter(None, options.split(",")):
            key, _, value = option.partition("=")
            key = key.strip()
            if key in ("at", "times", "index"):
                fields[key] = int(value)
            elif key == "action":
                fields[key] = value.strip()
            else:
                raise ValueError(
                    f"REPRO_FAULTS: unknown option {key!r} in {entry!r}"
                )
        armed.append(arm(Fault(site=site.strip(), **fields)))
    return armed


@contextmanager
def inject(
    site: str,
    error: Optional[BaseException] = None,
    at: int = 1,
    times: int = 1,
    index: Optional[int] = None,
    action: str = "raise",
) -> Iterator[Fault]:
    """Arm a fault for the duration of the ``with`` block.

    Yields the :class:`Fault` so tests can assert on ``fired`` afterwards.
    """
    fault = Fault(
        site=site, error=error, at=at, times=times, index=index, action=action
    )
    _ACTIVE.append(fault)
    try:
        yield fault
    finally:
        _ACTIVE.remove(fault)
