"""Wall-clock deadlines and iteration budgets.

A :class:`Deadline` is an absolute wall-clock cut-off; a :class:`Budget`
bundles it with iteration caps and is threaded through the long-running
entry points (:meth:`LayoutOrientedSynthesizer.run <repro.core.synthesis.
LayoutOrientedSynthesizer.run>`, :meth:`DesignPlan.size
<repro.sizing.plans.base.DesignPlan.size>`, :func:`run_monte_carlo
<repro.analysis.montecarlo.run_monte_carlo>`).  Each stage calls
:meth:`Budget.check` at a clean boundary — a synthesis round, a sizing
iteration, a Monte-Carlo shard — so a runaway case raises a diagnosable
:class:`~repro.errors.BudgetExceededError` carrying partial progress
instead of hanging.

``Deadline`` takes an injectable ``clock`` so budget-expiry paths are
deterministically testable (advance a fake clock instead of sleeping).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import BudgetExceededError


class Deadline:
    """A wall-clock cut-off measured from construction time."""

    __slots__ = ("seconds", "_clock", "_start")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ):
        if not seconds > 0.0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self.seconds = float(seconds)
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        """Seconds consumed since the deadline was armed."""
        return self._clock() - self._start

    @property
    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.seconds - self.elapsed

    def expired(self) -> bool:
        return self.elapsed >= self.seconds

    def check(self, site: str, **context: object) -> None:
        """Raise :class:`BudgetExceededError` at ``site`` if expired."""
        elapsed = self.elapsed
        if elapsed >= self.seconds:
            detail = "".join(
                f", {key}={value!r}" for key, value in sorted(context.items())
            )
            raise BudgetExceededError(
                f"deadline of {self.seconds:g} s exceeded at {site!r} "
                f"after {elapsed:.3f} s{detail}",
                site=site,
                elapsed=elapsed,
                budget=self,
            )

    def __repr__(self) -> str:
        return (
            f"Deadline({self.seconds:g}s, elapsed={self.elapsed:.3f}s)"
        )


@dataclass
class Budget:
    """Resource envelope for one synthesis / analysis invocation.

    ``deadline`` bounds wall-clock time; ``max_sizing_iterations`` caps the
    inner sizing fixed-point loop of a design plan (the plan uses the
    smaller of its own limit and this one).  All fields are optional — an
    empty budget checks nothing and costs one attribute test per boundary.
    """

    deadline: Optional[Deadline] = None
    max_sizing_iterations: Optional[int] = None

    @classmethod
    def from_seconds(cls, seconds: float) -> "Budget":
        """A pure wall-clock budget (the ``--deadline`` CLI flag)."""
        return cls(deadline=Deadline(seconds))

    def check(self, site: str, **context: object) -> None:
        """Raise :class:`BudgetExceededError` at ``site`` if exhausted."""
        if self.deadline is not None:
            self.deadline.check(site, **context)

    def sizing_iteration_cap(self, plan_limit: int) -> int:
        """Effective sizing-loop iteration limit for a design plan."""
        if self.max_sizing_iterations is None:
            return plan_limit
        return max(1, min(plan_limit, self.max_sizing_iterations))
