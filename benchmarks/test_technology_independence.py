"""Extension E3 — technology independence of the whole flow.

"Technology independence is a key feature of any layout tool" (paper
section 3).  The generators consult only the DesignRules object, and the
sizing plans only the shared device models — so the *entire* coupled flow
should run unchanged on a different process.  This bench runs case 4 on
the 0.35 um and 0.8 um presets.
"""

import pytest

from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.layout.drc import DrcChecker
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.technology import generic_035, generic_080
from repro.units import PF, UM


def _specs_for(technology):
    vdd = technology.supply_nominal
    scale = vdd / 3.3
    return OtaSpecs(
        vdd=vdd, gbw=65e6, phase_margin=65.0, cload=3 * PF,
        input_cm_range=(0.55 * scale, 1.84 * scale),
        output_range=(0.51 * scale, 2.31 * scale),
    )


@pytest.fixture(scope="module", params=["0.35um", "0.8um"])
def other_node(request, results_dir):
    technology = {"0.35um": generic_035, "0.8um": generic_080}[request.param]()
    specs = _specs_for(technology)
    outcome = LayoutOrientedSynthesizer(technology).run(
        specs, ParasiticMode.FULL, generate=True
    )
    metrics = outcome.sizing.predicted
    line = (
        f"{technology.name}: {outcome.layout_calls} layout calls, "
        f"GBW {metrics.gbw / 1e6:.1f} MHz, PM {metrics.phase_margin_deg:.1f} "
        f"deg, layout {outcome.layout.report.width / UM:.0f} x "
        f"{outcome.layout.report.height / UM:.0f} um"
    )
    print("\n" + line)
    path = results_dir / f"technology_independence_{request.param}.txt"
    path.write_text(line + "\n")
    return technology, specs, outcome


def test_benchmark_flow_at_035(benchmark):
    technology = generic_035()
    specs = _specs_for(technology)
    synthesizer = LayoutOrientedSynthesizer(technology)
    outcome = benchmark.pedantic(
        synthesizer.run, args=(specs,),
        kwargs={"mode": ParasiticMode.FULL, "generate": False},
        rounds=1, iterations=1,
    )
    assert outcome.converged


class TestOtherNodes:
    def test_flow_converges(self, other_node):
        _tech, _specs, outcome = other_node
        assert outcome.converged
        assert 2 <= outcome.layout_calls <= 6

    def test_specs_met_with_parasitics(self, other_node):
        _tech, specs, outcome = other_node
        metrics = outcome.sizing.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.02)
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=1.0
        )

    def test_layout_honours_local_rules(self, other_node):
        """The same generators, DRC-clean under each node's own rules."""
        technology, _specs, outcome = other_node
        DrcChecker(technology).assert_clean(outcome.layout.cell)

    def test_folds_scale_with_node(self, other_node):
        technology, _specs, outcome = other_node
        assert all(nf >= 1 for nf in outcome.layout.fold_config.values())
