"""Extension E2 — transient-measured slew rate and settling.

Table 1's slew-rate row is, in the paper and in our metrics harness, an
``I/C`` estimate.  The transient engine turns it into a measurement: the
case-1 and case-4 OTAs are wired as unity-gain buffers, stepped, and the
measured slope/settling compared against the estimates — including the
asymmetry the estimate cannot see (the folded branch limits one slewing
direction).
"""

import numpy as np
import pytest

from repro.analysis.transient import measure_slew_rate, run_transient, step_waveform
from repro.sizing.specs import ParasiticMode


@pytest.fixture(scope="module")
def transient_measurements(tech, specs, all_cases, results_dir):
    from repro.sizing.plans.folded_cascode import FoldedCascodePlan
    from repro.core.synthesis import LayoutOrientedSynthesizer

    plan = FoldedCascodePlan(tech)
    benches = {}
    case1 = all_cases[ParasiticMode.NONE]
    benches[ParasiticMode.NONE] = plan.build_testbench(
        case1.sizing, specs, ParasiticMode.NONE
    )
    case4 = all_cases[ParasiticMode.FULL]
    outcome = LayoutOrientedSynthesizer(tech, plan=plan).run(
        specs, ParasiticMode.FULL, generate=False
    )
    benches[ParasiticMode.FULL] = plan.build_testbench(
        outcome.sizing, specs, ParasiticMode.FULL, outcome.feedback
    )

    rows = {}
    lines = ["case  SR estimate (V/us)  SR measured  settling (ns)"]
    for mode, bench in benches.items():
        slew, result = measure_slew_rate(bench, step_amplitude=0.8)
        vcm = bench.common_mode_voltage()
        settle = result.settling_time(
            bench.output_net, vcm + 0.4, 0.01, t_start=20e-9
        )
        estimate = all_cases[mode].synthesized.slew_rate
        rows[mode] = (estimate, slew, settle, result, bench)
        lines.append(
            f"{mode.value:<5} {estimate / 1e6:14.1f} {slew / 1e6:15.1f} "
            f"{(settle or 0) * 1e9:12.1f}"
        )
    text = "\n".join(lines)
    (results_dir / "extension_transient.txt").write_text(text + "\n")
    print("\n" + text)
    return rows


def test_benchmark_transient_step(benchmark, transient_measurements):
    _estimate, _slew, _settle, _result, bench = transient_measurements[
        ParasiticMode.FULL
    ]
    slew, _ = benchmark.pedantic(
        measure_slew_rate, args=(bench,), kwargs={"step_amplitude": 0.8},
        rounds=1, iterations=1,
    )
    assert slew > 0


class TestMeasuredSlew:
    def test_measured_within_factor_two_of_estimate(
        self, transient_measurements
    ):
        for mode, (estimate, slew, _s, _r, _b) in (
            transient_measurements.items()
        ):
            assert 0.4 * estimate < slew < 1.7 * estimate, mode

    def test_buffers_settle(self, transient_measurements):
        for mode, (_e, _slew, settle, _r, _b) in (
            transient_measurements.items()
        ):
            assert settle is not None and settle < 300e-9, mode

    def test_slewing_is_asymmetric(self, transient_measurements):
        """The folded branch limits one direction: the falling-step slope
        differs from the rising one — invisible to the I/C estimate."""
        _e, _slew, _settle, _result, bench = transient_measurements[
            ParasiticMode.FULL
        ]
        from repro.analysis.transient import run_transient, step_waveform

        circuit = bench.circuit.clone("down")
        circuit.remove(bench.source_neg)
        circuit.add_vsource("_fb", bench.input_neg_net, bench.output_net,
                            dc=0.0)
        vcm = bench.common_mode_voltage()
        down = run_transient(
            circuit, t_stop=400e-9, dt=1e-9,
            waveforms={bench.source_pos: step_waveform(
                vcm + 0.4, vcm - 0.4, 20e-9
            )},
        )
        up = transient_measurements[ParasiticMode.FULL][3]
        slew_down = down.slew_rate(bench.output_net, t_start=20e-9)
        slew_up = up.slew_rate(bench.output_net, t_start=20e-9)
        assert slew_down != pytest.approx(slew_up, rel=0.02)
