"""Figure 3 — current mirror stack with M1:M2:M3 = 1:3:6.

Regenerates the paper's mirror layout: dummy-guarded stack, devices
centred around the stack midpoint, current directions chosen to cancel
orientation mismatch, wire widths and contact counts adjusted for the
(high) branch currents.
"""

import pytest

from repro.layout.devices import current_mirror_layout
from repro.layout.layers import Layer
from repro.layout.stack import generate_stack
from repro.layout.svg import write_svg
from repro.units import UM

RATIOS = {"m1": 1, "m2": 3, "m3": 6}
CURRENTS = {"m1": 100e-6, "m2": 300e-6, "m3": 600e-6}


def build_mirror(tech, currents=CURRENTS):
    return current_mirror_layout(
        tech, "n", RATIOS, unit_width=6 * UM, l=2 * UM,
        drains={"m1": "bias", "m2": "out2", "m3": "out3"},
        gate="bias", source="0", bulk="0",
        currents=currents, name="figure3_mirror",
    )


@pytest.fixture(scope="module")
def mirror(tech, results_dir):
    layout = build_mirror(tech)
    write_svg(layout.cell, str(results_dir / "figure3_mirror.svg"), scale=12)
    print("\nFigure 3 stack pattern:", layout.plan.pattern())
    return layout


def test_benchmark_stack_generation(benchmark):
    plan = benchmark(generate_stack, RATIOS)
    assert plan.total_fingers == 12


def test_benchmark_mirror_layout(benchmark, tech):
    layout = benchmark.pedantic(build_mirror, args=(tech,),
                                rounds=1, iterations=1)
    assert layout.cell.area > 0


class TestFigure3Matching:
    def test_width_ratios_1_3_6(self, mirror):
        widths = mirror.actual_widths
        assert widths["m2"] == pytest.approx(3 * widths["m1"])
        assert widths["m3"] == pytest.approx(6 * widths["m1"])

    def test_dummy_transistors_at_ends(self, mirror):
        """Paper: dummies guard the stack."""
        assert mirror.plan.fingers[0].is_dummy
        assert mirror.plan.fingers[-1].is_dummy

    def test_transistors_centred_around_midpoint(self, mirror):
        """Paper: 'all transistors are centered around the mid-point of
        the stack.'"""
        assert abs(mirror.plan.centroid_offset("m3")) <= 0.5
        assert abs(mirror.plan.centroid_offset("m2")) <= 0.5
        assert abs(mirror.plan.centroid_offset("m1")) <= 0.5

    def test_current_direction_mismatch_minimised(self, mirror):
        """Paper: current mismatch minimised by channel orientation; the
        even-unit device cancels exactly, odd devices leave one finger."""
        assert mirror.plan.orientation_balance("m3") == 0
        assert abs(mirror.plan.orientation_balance("m2")) <= 1
        assert abs(mirror.plan.orientation_balance("m1")) <= 1


class TestFigure3Reliability:
    def test_wire_widths_scale_with_current(self, tech):
        """Paper: 'wire widths and contact numbers have been adjusted for
        each transistor assuming high current densities.'"""
        cool = build_mirror(tech, {"m1": 20e-6, "m2": 60e-6, "m3": 120e-6})
        hot = build_mirror(tech, {"m1": 1e-3, "m2": 3e-3, "m3": 6e-3})
        assert hot.cell.pin_rect("out3").height > (
            cool.cell.pin_rect("out3").height
        )

    def test_heaviest_branch_has_widest_rail(self, tech):
        hot = build_mirror(tech, {"m1": 0.5e-3, "m2": 1.5e-3, "m3": 3e-3})
        rail_m3 = hot.cell.pin_rect("out3").height
        rail_m1 = hot.cell.pin_rect("bias").height
        assert rail_m3 > rail_m1

    def test_contact_count_grows_with_current(self, tech):
        cool = build_mirror(tech, {"m1": 20e-6, "m2": 60e-6, "m3": 120e-6})
        hot = build_mirror(tech, {"m1": 1e-3, "m2": 3e-3, "m3": 6e-3})
        def cuts(layout):
            return len(layout.cell.shapes_on(Layer.CONTACT))
        # The EM rule can only ever add cuts.
        assert cuts(hot) >= cuts(cool)

    def test_rails_meet_em_limit(self, tech, mirror):
        metal2 = tech.metal("metal2")
        for net, current in (("out2", 300e-6), ("out3", 600e-6)):
            rail = mirror.cell.pin_rect(net)
            assert rail.height >= metal2.min_width_for_current(current, 0.0)


class TestFigure3Electrical:
    def test_mirror_accuracy_benefits_from_layout(self, tech, mirror):
        """The drawn per-device geometry keeps drain areas proportional,
        so junction-cap-induced transient mismatch scales with ratio."""
        g1 = mirror.device_geometry["m1"]
        g3 = mirror.device_geometry["m3"]
        assert g3.ad > g1.ad
