"""Analysis-engine benchmark-regression harness.

Times the three analysis workloads the synthesis loop leans on — a
feedback DC solve, a 200-point AC sweep and a 50-run Monte-Carlo offset
analysis — under both the legacy per-element engine and the compiled-stamp
engine, plus the end-to-end Table-1 case-4 synthesis.  The per-engine
``pytest-benchmark`` entries track absolute regressions; the final test
writes the machine-readable before/after record ``BENCH_analysis.json``
at the repository root (the same record ``python -m repro bench``
produces) and asserts the headline speedups hold.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.analysis.ac import ac_sweep
from repro.analysis.dcop import solve_dc
from repro.analysis.engine import (
    COMPILED,
    LEGACY,
    PERSAMPLE,
    STACKED,
    ensemble_engine,
    use_engine,
)
from repro.analysis.montecarlo import run_monte_carlo
from repro.perf import (
    BENCH_FILENAME,
    default_testbench,
    run_benchmarks,
    run_runtime_benchmarks,
    write_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ENGINES = (LEGACY, COMPILED)


@pytest.fixture(scope="module")
def bench_tb():
    return default_testbench()


@pytest.fixture(scope="module")
def feedback_circuit(bench_tb):
    feedback = bench_tb.circuit.clone("bench_fb")
    feedback.remove(bench_tb.source_neg)
    feedback.add_vsource(
        "_fb", bench_tb.input_neg_net, bench_tb.output_net, dc=0.0
    )
    return feedback


@pytest.fixture(scope="module")
def feedback_dc(feedback_circuit):
    return solve_dc(feedback_circuit)


@pytest.mark.parametrize("engine", ENGINES)
def test_benchmark_dc_solve(benchmark, feedback_circuit, engine):
    """One nonlinear DC operating-point solve of the feedback OTA."""
    with use_engine(engine):
        solution = benchmark.pedantic(
            solve_dc, args=(feedback_circuit,),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert solution.gmin == 0.0


@pytest.mark.parametrize("engine", ENGINES)
def test_benchmark_ac_sweep_200(
    benchmark, bench_tb, feedback_circuit, feedback_dc, engine
):
    """A 200-point logarithmic AC sweep at the shared operating point."""
    frequencies = np.logspace(0.0, 9.0, 200)
    drive = {bench_tb.source_pos: 0.5, "_fb": 0.0}
    with use_engine(engine):
        solution = benchmark.pedantic(
            ac_sweep, args=(feedback_circuit, feedback_dc, frequencies, drive),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert solution.frequencies.size == 200


@pytest.mark.parametrize("engine", ENGINES)
def test_benchmark_monte_carlo_50(benchmark, bench_tb, engine):
    """50 Pelgrom-mismatch offset samples (one DC solve per sample)."""
    with use_engine(engine):
        result = benchmark.pedantic(
            run_monte_carlo, args=(bench_tb,),
            kwargs={"runs": 50, "seed": 1234},
            rounds=1, iterations=1, warmup_rounds=0,
        )
    assert len(result.samples["offset_voltage"]) == 50


@pytest.mark.parametrize("mode", (PERSAMPLE, STACKED))
def test_benchmark_monte_carlo_200_ensemble(benchmark, bench_tb, mode):
    """200 offset samples, per-sample loop vs one stacked (K, n, n) solve."""
    with ensemble_engine.use(mode):
        result = benchmark.pedantic(
            run_monte_carlo, args=(bench_tb,),
            kwargs={"runs": 200, "seed": 1234},
            rounds=1, iterations=1, warmup_rounds=0,
        )
    assert len(result.samples["offset_voltage"]) == 200


def test_write_bench_record():
    """Run the engine comparison and persist ``BENCH_analysis.json``.

    The speedup floors are deliberately loose (the acceptance numbers are
    far higher on an idle machine) so the harness flags real regressions
    without being flaky under load.
    """
    results = run_benchmarks(repeat=3, include_synthesis=True)
    results.update(run_runtime_benchmarks(repeat=3))
    write_bench(results, str(REPO_ROOT / BENCH_FILENAME))
    assert results["dc_solve"]["speedup"] > 1.0
    assert results["ac_sweep_200"]["speedup"] > 1.0
    assert results["monte_carlo_50"]["speedup"] > 1.0
    assert results["synthesize_case4"]["speedup"] > 1.5
    # Incremental hot path: warm repeats serve sizing rounds and layout
    # calls from the differential stores (acceptance floor 1.8x; warm
    # repeats measure far higher on an idle machine).
    assert results["synthesize_case4_incremental"]["speedup"] > 1.8
    # Acceptance floor is 3x on an idle machine; 2x absorbs CI noise.
    assert results["monte_carlo_200_ensemble"]["speedup"] > 2.0
    assert "corners_batch_ensemble" in results
    # Executor-runtime floors (acceptance: 2x dispatch, 3x warm on an
    # idle machine; loosened here so the harness is not flaky under
    # CI load).
    assert results["mc_dispatch_overhead"]["speedup"] > 1.5
    assert results["table1_warm_vs_cold"]["speedup"] > 2.0
