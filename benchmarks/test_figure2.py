"""Figure 2 — capacitance reduction factor F vs number of folds.

Regenerates the paper's three curves:

* (a) even Nf, internal diffusion  -> F = 1/2,
* (b) even Nf, external diffusion  -> F = (Nf+2)/(2Nf),
* (c) odd Nf                       -> F = (Nf+1)/(2Nf),

and asserts the figure's qualitative statement: F "decreases
significantly for the first few folds for cases (b) and (c)".
"""

import pytest

from repro.layout.folding import DiffusionPosition, capacitance_reduction_factor


def figure2_series(max_folds: int = 20):
    """(nf, F_a, F_b, F_c) rows; None where a case is undefined."""
    rows = []
    for nf in range(1, max_folds + 1):
        if nf == 1:
            rows.append((nf, 1.0, 1.0, 1.0))
        elif nf % 2 == 0:
            rows.append(
                (
                    nf,
                    capacitance_reduction_factor(nf, DiffusionPosition.INTERNAL),
                    capacitance_reduction_factor(nf, DiffusionPosition.EXTERNAL),
                    None,
                )
            )
        else:
            rows.append(
                (
                    nf,
                    None,
                    None,
                    capacitance_reduction_factor(
                        nf, DiffusionPosition.ALTERNATING
                    ),
                )
            )
    return rows


@pytest.fixture(scope="module")
def series(results_dir):
    rows = figure2_series()
    lines = ["Nf   F(a)internal  F(b)external  F(c)odd"]
    for nf, fa, fb, fc in rows:
        cells = [
            f"{value:.4f}" if value is not None else "   -  "
            for value in (fa, fb, fc)
        ]
        lines.append(f"{nf:<4d} {cells[0]:>12} {cells[1]:>13} {cells[2]:>8}")
    text = "\n".join(lines)
    (results_dir / "figure2.txt").write_text(text + "\n")
    print("\n" + text)
    return rows


def test_benchmark_figure2(benchmark):
    rows = benchmark(figure2_series, 20)
    assert len(rows) == 20


class TestFigure2Shape:
    def test_case_a_flat_at_half(self, series):
        values = [fa for _nf, fa, _fb, _fc in series if fa is not None][1:]
        assert all(value == pytest.approx(0.5) for value in values)

    def test_case_b_steep_initial_drop(self, series):
        """F(b) falls from 1.0 at Nf=2 to 0.75 at Nf=4."""
        by_nf = {nf: fb for nf, _fa, fb, _fc in series if fb is not None}
        assert by_nf[2] == pytest.approx(1.0)
        assert by_nf[4] == pytest.approx(0.75)
        assert by_nf[2] - by_nf[4] > 0.2

    def test_case_c_steep_initial_drop(self, series):
        by_nf = {nf: fc for nf, _fa, _fb, fc in series if fc is not None}
        assert by_nf[3] == pytest.approx(2 / 3)
        assert by_nf[5] == pytest.approx(0.6)

    def test_both_converge_toward_half(self, series):
        """Figure 2's asymptote."""
        by_nf_b = {nf: fb for nf, _fa, fb, _fc in series if fb is not None}
        by_nf_c = {nf: fc for nf, _fa, _fb, fc in series if fc is not None}
        assert by_nf_b[20] == pytest.approx(0.55)
        assert by_nf_c[19] < 0.53

    def test_internal_always_best(self, series):
        for _nf, fa, fb, _fc in series:
            if fa is not None and fb is not None and _nf > 1:
                assert fa <= fb

    def test_drawn_geometry_follows_curve(self, tech):
        """The motif generator's drawn diffusion tracks the formula: the
        drain area of an even-fold device is half the unfolded one."""
        from repro.layout.motif import generate_mos_motif
        from repro.units import UM

        unfolded = generate_mos_motif(tech, "n", 60 * UM, 1 * UM, nf=1)
        folded = generate_mos_motif(tech, "n", 60 * UM, 1 * UM, nf=6)
        # Internal strips are slightly longer than end strips, so compare
        # effective widths: area / strip length.
        ratio = (
            folded.geometry.ad / tech.rules.contacted_diffusion_width
        ) / (unfolded.geometry.ad / tech.rules.end_diffusion_width)
        assert ratio == pytest.approx(0.5, rel=0.01)
