"""Layout-path benchmark-regression harness.

Times geometric extraction and DRC of the generated case-4 OTA cell
under both geometry engines (scalar vs vectorized extraction, all-pairs
vs grid-indexed DRC), plus the parallel Table-1 batch driver on hosts
with enough cores.  The final test merges the layout entries into the
machine-readable ``BENCH_analysis.json`` record next to the analysis
numbers and asserts the headline speedups hold (floors deliberately
loose so the harness flags real regressions without being flaky under
load — the acceptance numbers are far higher on an idle machine).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.layout.drc import DrcChecker
from repro.layout.engine import (
    ALLPAIRS,
    GRID,
    SCALAR,
    VECTOR,
    drc_engine,
    extraction_engine,
)
from repro.layout.extraction import extract_cell
from repro.perf import (
    BENCH_FILENAME,
    hand_ota_layout,
    load_bench,
    run_layout_benchmarks,
    write_bench,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

EXTRACTION_ENGINES = (SCALAR, VECTOR)
DRC_ENGINES = (ALLPAIRS, GRID)


@pytest.fixture(scope="module")
def ota_cell(tech):
    return hand_ota_layout(tech).cell


@pytest.mark.parametrize("engine", EXTRACTION_ENGINES)
def test_benchmark_extract_ota_cell(benchmark, ota_cell, tech, engine):
    """Full geometric extraction of the generated OTA cell."""
    with extraction_engine.use(engine):
        extracted = benchmark.pedantic(
            extract_cell, args=(ota_cell, tech),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert extracted.net_wire_cap


@pytest.mark.parametrize("engine", DRC_ENGINES)
def test_benchmark_drc_ota_cell(benchmark, ota_cell, tech, engine):
    """Full design-rule check of the generated OTA cell."""
    checker = DrcChecker(tech)
    with drc_engine.use(engine):
        violations = benchmark.pedantic(
            checker.check, args=(ota_cell,),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert violations == []


def test_write_layout_bench_record():
    """Merge the layout entries into ``BENCH_analysis.json`` and assert
    the vectorized/grid paths beat the scalar references."""
    jobs = 4 if len(os.sched_getaffinity(0)) >= 4 else 0
    results = run_layout_benchmarks(repeat=3, batch_jobs=jobs)
    record_path = REPO_ROOT / BENCH_FILENAME
    merged = dict(load_bench(record_path)) if record_path.exists() else {}
    merged.update(results)
    write_bench(merged, str(record_path))
    assert results["layout_extract"]["speedup"] > 1.5
    assert results["layout_drc"]["speedup"] > 1.5
    # Warm repeats of the same cell come from the per-module store.
    assert results["extraction_incremental"]["speedup"] > 3.0
    if jobs:
        # Serial vs --jobs 4 Table-1 batch: only asserted where the host
        # actually has the cores to parallelize onto.
        assert results[f"table1_batch_jobs{jobs}"]["speedup"] > 1.2
