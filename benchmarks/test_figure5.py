"""Figure 5 — generated layout of the case-4 OTA.

Generates the final layout of the layout-oriented synthesis and checks
the paper's remarks about it:

* "all transistor folds are chosen such that drains are internal
  diffusions to minimize drain capacitance";
* "the input differential pair is in a common centroid style with dummy
  transistors at the end".

The cell is exported to SVG and GDSII under ``benchmarks/results/``.
"""

import pytest

from repro.layout.folding import capacitance_reduction_factor, DiffusionPosition
from repro.layout.gds import write_gds
from repro.layout.svg import write_svg
from repro.units import UM


@pytest.fixture(scope="module")
def layout(synthesis_outcome, results_dir):
    result = synthesis_outcome.layout
    write_svg(result.cell, str(results_dir / "figure5_ota.svg"), scale=6)
    write_gds(result.cell, str(results_dir / "figure5_ota.gds"))
    print(
        "\nFigure 5 layout: %.1f x %.1f um, folds %s"
        % (result.report.width / UM, result.report.height / UM,
           result.fold_config)
    )
    return result


def test_benchmark_generation_mode(benchmark, synthesis_outcome, tech):
    """Time the generation-mode layout call for the converged sizes."""
    from repro.layout.ota import OtaLayoutRequest, generate_ota_layout

    sizing = synthesis_outcome.sizing
    request = OtaLayoutRequest(
        technology=tech, sizes=sizing.sizes, currents=sizing.currents,
        aspect=1.0,
    )
    result = benchmark.pedantic(
        generate_ota_layout, args=(request,), kwargs={"mode": "generate"},
        rounds=1, iterations=1,
    )
    assert result.cell is not None


class TestFigure5Claims:
    def test_drains_internal_on_folded_devices(self, layout):
        """Even fold counts put every drain on internal diffusions: the
        drain sees F = 1/2 of its unfolded capacitance."""
        for name, info in layout.report.devices.items():
            if info.nf >= 2:
                assert info.nf % 2 == 0, name
                assert info.drain_internal, name

    def test_drain_capacitance_actually_halved(self, layout, tech):
        info = layout.report.devices["mp1"]
        if info.nf >= 2:
            finger = info.finger_width
            internal = tech.rules.contacted_diffusion_width
            strips = info.nf // 2
            assert info.geometry.ad == pytest.approx(
                strips * finger * internal, rel=0.01
            )

    def test_input_pair_common_centroid_with_dummies(self, layout):
        pair = layout.placements["pair"].layout
        assert pair.plan is not None
        dummies = [f for f in pair.plan.fingers if f.is_dummy]
        assert len(dummies) == 2
        assert pair.plan.centroid_offset("mp1") == 0.0
        assert pair.plan.centroid_offset("mp2") == 0.0

    def test_row_structure_matches_figure(self, layout):
        """Input pair between the NMOS row and the PMOS rows."""
        from repro.layout.ota import MODULE_ROWS

        pair_row = MODULE_ROWS["pair"][0]
        assert MODULE_ROWS["sink"][0] < pair_row
        assert MODULE_ROWS["mirror"][0] > pair_row

    def test_area_compact(self, layout):
        """The layout is a compact block, not a degenerate strip."""
        aspect = layout.report.height / layout.report.width
        assert 0.4 < aspect < 2.5

    def test_exports_written(self, layout, results_dir):
        assert (results_dir / "figure5_ota.svg").stat().st_size > 10_000
        assert (results_dir / "figure5_ota.gds").stat().st_size > 10_000

    def test_layout_is_drc_clean(self, layout, tech):
        """The generated Figure-5 layout passes width/spacing/short/
        enclosure checks — procedural correctness by construction."""
        from repro.layout.drc import DrcChecker

        DrcChecker(tech).assert_clean(layout.cell)
