"""Table 1 — sizing, layout and simulation results for the four cases.

Regenerates the paper's headline table: the same OTA sized with four
levels of parasitic knowledge, each measured twice (synthesized netlist
and extracted layout).  Absolute values differ from the paper (synthetic
process), but the structural claims are asserted:

* case 1 extraction degrades GBW and phase margin well below spec;
* case 2 extraction *overshoots* (diffusion was over-estimated) and pays
  with the lowest gain / output resistance / CMRR and the highest noise;
* case 3 comes close but misses;
* case 4 matches its extraction and meets the spec.
"""

import pytest

from repro.core.report import format_table1
from repro.sizing.specs import ParasiticMode


@pytest.fixture(scope="module")
def table(all_cases, results_dir):
    ordered = [all_cases[mode] for mode in ParasiticMode]
    text = format_table1(ordered, title="Table 1 (reproduced)")
    (results_dir / "table1.txt").write_text(text + "\n")
    print("\n" + text)
    return all_cases


def test_benchmark_case4_full_flow(benchmark, tech, specs):
    """Time one complete layout-oriented case run (size+layout+extract)."""
    from repro.core.cases import run_case

    result = benchmark.pedantic(
        run_case, args=(tech, specs, ParasiticMode.FULL),
        rounds=1, iterations=1,
    )
    assert result.synthesized.gbw == pytest.approx(specs.gbw, rel=0.02)


class TestCase1Shape:
    def test_synthesized_on_spec(self, table, specs):
        case = table[ParasiticMode.NONE]
        assert case.synthesized.gbw == pytest.approx(specs.gbw, rel=0.02)
        assert case.synthesized.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=1.0
        )

    def test_extraction_degrades_dynamics(self, table, specs):
        """Paper: GBW 64.9 -> 58.1 MHz, PM 65.3 -> 56.3 degrees."""
        case = table[ParasiticMode.NONE]
        assert case.extracted.gbw < 0.95 * specs.gbw
        assert case.extracted.phase_margin_deg < specs.phase_margin - 5.0

    def test_dc_rows_unaffected(self, table):
        """Paper: 'all dc characteristics match'."""
        case = table[ParasiticMode.NONE]
        assert case.extracted.dc_gain_db == pytest.approx(
            case.synthesized.dc_gain_db, abs=1.0
        )
        assert case.extracted.cmrr_db == pytest.approx(
            case.synthesized.cmrr_db, abs=2.0
        )


class TestCase2Shape:
    def test_extraction_overshoots(self, table, specs):
        """Paper: 'the GBW and phase margin exceed the required
        specifications' (66.5 -> 71.2 MHz, 65.4 -> 72.4 deg)."""
        case = table[ParasiticMode.SINGLE_FOLD]
        assert case.extracted.gbw > specs.gbw
        assert case.extracted.phase_margin_deg > specs.phase_margin + 2.0

    def test_lowest_gain_of_all_cases(self, table):
        """Paper: 55.0 dB against 70.1/66.1/64.7."""
        gain2 = table[ParasiticMode.SINGLE_FOLD].synthesized.dc_gain_db
        for mode, case in table.items():
            if mode is not ParasiticMode.SINGLE_FOLD:
                assert gain2 < case.synthesized.dc_gain_db

    def test_lowest_output_resistance(self, table):
        """Paper: 0.38 Mohm against 2.4/1.5/1.23."""
        rout2 = table[ParasiticMode.SINGLE_FOLD].synthesized.output_resistance
        for mode, case in table.items():
            if mode is not ParasiticMode.SINGLE_FOLD:
                assert rout2 < case.synthesized.output_resistance

    def test_lowest_cmrr(self, table):
        """Paper: 76.9 dB against 100.7/93.9/91.6."""
        cmrr2 = table[ParasiticMode.SINGLE_FOLD].synthesized.cmrr_db
        for mode, case in table.items():
            if mode is not ParasiticMode.SINGLE_FOLD:
                assert cmrr2 < case.synthesized.cmrr_db

    def test_highest_noise(self, table):
        """Paper: 101.6 uV against 83.9/83.3/82.7."""
        noise2 = table[ParasiticMode.SINGLE_FOLD].synthesized.input_noise_rms
        for mode, case in table.items():
            if mode is not ParasiticMode.SINGLE_FOLD:
                assert noise2 > case.synthesized.input_noise_rms * 0.995

    def test_offset_from_grid_snapping(self, table):
        """Paper: 'Note also the resulting offset voltage after folding due
        to the slight modification of transistor widths needed by layout
        grid' — case 2's extracted offset is the largest magnitude."""
        offset2 = abs(table[ParasiticMode.SINGLE_FOLD].extracted.offset_voltage)
        offset1 = abs(table[ParasiticMode.NONE].extracted.offset_voltage)
        assert offset2 > offset1


class TestCase3Shape:
    def test_close_but_short(self, table, specs):
        """Paper: 'only a slight difference ... however, both
        specifications could not be satisfied.'"""
        case = table[ParasiticMode.LAYOUT_DIFFUSION]
        assert case.extracted.gbw < specs.gbw
        assert case.extracted.phase_margin_deg < specs.phase_margin
        # But better than case 1.
        assert case.extracted.phase_margin_deg > (
            table[ParasiticMode.NONE].extracted.phase_margin_deg
        )


class TestCase4Shape:
    def test_all_results_match_extraction(self, table):
        """Paper: 'All results match the extracted netlist simulations.'"""
        case = table[ParasiticMode.FULL]
        assert case.extracted.gbw == pytest.approx(
            case.synthesized.gbw, rel=0.03
        )
        assert case.extracted.phase_margin_deg == pytest.approx(
            case.synthesized.phase_margin_deg, abs=1.5
        )

    def test_specs_met_after_extraction(self, table, specs):
        case = table[ParasiticMode.FULL]
        assert case.extracted.gbw >= 0.97 * specs.gbw
        assert case.extracted.phase_margin_deg >= specs.phase_margin - 1.5

    def test_layout_calls_near_three(self, table):
        """Paper: 'Three calls of the layout tool were needed'."""
        assert 2 <= table[ParasiticMode.FULL].layout_calls <= 6

    def test_sizing_under_two_minutes(self, table):
        """Paper: 'The sizing time for each case including layout calls
        does not exceed two minutes.'"""
        for case in table.values():
            assert case.elapsed < 120.0
