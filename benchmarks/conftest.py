"""Benchmark fixtures.

The expensive experiment artefacts (the four Table-1 case runs, the
synthesis outcome) are computed once per session and shared by all
benches; the ``benchmark`` fixture then times the representative kernel of
each experiment.  Regenerated tables/figures are written to
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.cases import run_case
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.technology import generic_060
from repro.units import PF

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def tech():
    return generic_060()


@pytest.fixture(scope="session")
def specs():
    """The paper's Table-1 input specification block."""
    return OtaSpecs(
        vdd=3.3,
        gbw=65e6,
        phase_margin=65.0,
        cload=3 * PF,
        input_cm_range=(0.55, 1.84),
        output_range=(0.51, 2.31),
    )


@pytest.fixture(scope="session")
def all_cases(tech, specs):
    """All four Table-1 cases, keyed by ParasiticMode."""
    return {
        mode: run_case(tech, specs, mode)
        for mode in ParasiticMode
    }


@pytest.fixture(scope="session")
def synthesis_outcome(tech, specs):
    synthesizer = LayoutOrientedSynthesizer(tech)
    return synthesizer.run(specs, mode=ParasiticMode.FULL, generate=True)


@pytest.fixture(scope="session")
def plan(tech):
    return FoldedCascodePlan(tech)
