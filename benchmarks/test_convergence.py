"""Convergence of the layout-oriented loop (paper section 5).

"This process is repeated till the calculated parasitics remain
unchanged. ... Three calls of the layout tool were needed before parasitic
convergence.  The sizing time for each case including layout calls does
not exceed two minutes."
"""

import pytest

from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.sizing.specs import ParasiticMode
from repro.units import FF


@pytest.fixture(scope="module")
def outcome(synthesis_outcome, results_dir):
    lines = ["round  distance(F)        fold changes"]
    previous_folds = None
    for record in synthesis_outcome.records:
        folds = {d: p.nf for d, p in record.report.devices.items()}
        changed = (
            "initial" if previous_folds is None
            else str(sum(1 for d in folds if folds[d] != previous_folds[d]))
        )
        distance = (
            "inf" if record.distance == float("inf")
            else f"{record.distance:.3e}"
        )
        lines.append(f"{record.round_index:<6d} {distance:<18} {changed}")
        previous_folds = folds
    text = "\n".join(lines)
    (results_dir / "convergence.txt").write_text(text + "\n")
    print("\n" + text)
    return synthesis_outcome


def test_benchmark_synthesis_loop(benchmark, tech, specs):
    synthesizer = LayoutOrientedSynthesizer(tech)
    result = benchmark.pedantic(
        synthesizer.run, args=(specs,),
        kwargs={"mode": ParasiticMode.FULL, "generate": False},
        rounds=1, iterations=1,
    )
    assert result.converged


class TestConvergenceClaims:
    def test_converged(self, outcome):
        assert outcome.converged

    def test_layout_calls_near_paper_count(self, outcome):
        """Paper: three calls."""
        assert 2 <= outcome.layout_calls <= 6

    def test_final_distance_below_tolerance(self, outcome):
        assert outcome.records[-1].distance <= 2 * FF

    def test_monotone_improvement(self, outcome):
        finite = [r.distance for r in outcome.records
                  if r.distance != float("inf")]
        assert finite[-1] == min(finite)

    def test_sizing_time_under_two_minutes(self, outcome):
        assert outcome.elapsed < 120.0

    def test_repeatable(self, tech, specs, outcome):
        """A second run converges to the same fold configuration."""
        again = LayoutOrientedSynthesizer(tech).run(
            specs, ParasiticMode.FULL, generate=False
        )
        first_folds = {d: p.nf for d, p in outcome.feedback.devices.items()}
        second_folds = {d: p.nf for d, p in again.feedback.devices.items()}
        assert first_folds == second_folds


class TestStatisticalReliability:
    """Paper §4: the verification interface 'permits to undergo
    statistical analysis to check the reliability of the synthesized
    circuit' — run it on the converged case-4 design."""

    @pytest.fixture(scope="class")
    def statistics(self, outcome, specs, plan, results_dir):
        from repro.analysis.montecarlo import run_monte_carlo
        from repro.sizing.specs import ParasiticMode

        bench = plan.build_testbench(
            outcome.sizing, specs, ParasiticMode.FULL, outcome.feedback
        )
        result = run_monte_carlo(bench, runs=40, seed=2026)
        sigma = result.std("offset_voltage")
        mean = result.mean("offset_voltage")
        text = (
            f"case-4 offset statistics over 40 mismatch samples:\n"
            f"  mean  {mean * 1e3:7.3f} mV\n"
            f"  sigma {sigma * 1e3:7.3f} mV\n"
            f"  worst {result.worst('offset_voltage') * 1e3:7.3f} mV\n"
        )
        (results_dir / "reliability_mc.txt").write_text(text)
        print("\n" + text)
        return result

    def test_offset_sigma_sub_millivolt_scale(self, statistics):
        """Large matched devices keep random offset in the mV range."""
        assert statistics.std("offset_voltage") < 10e-3

    def test_mean_near_systematic_value(self, statistics, outcome):
        systematic = outcome.sizing.predicted.offset_voltage
        assert statistics.mean("offset_voltage") == pytest.approx(
            systematic, abs=3 * statistics.std("offset_voltage")
        )
