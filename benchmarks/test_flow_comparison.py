"""Ablation A2 — traditional (Fig 1a) vs layout-oriented (Fig 1b) flow.

The paper's motivating claim: the traditional flow iterates expensive
generate-extract-evaluate-resize rounds, while the coupled flow replaces
them with fast parasitic-calculation calls and converges in a handful of
rounds.  This bench runs both flows on the same specification and compares
rounds, cost and final quality.
"""

import pytest

from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.core.traditional import TraditionalFlow
from repro.sizing.specs import ParasiticMode


@pytest.fixture(scope="module")
def comparison(tech, specs, synthesis_outcome, results_dir):
    traditional = TraditionalFlow(tech, max_rounds=6).run(specs)
    lines = [
        "flow              rounds  kind                 time(s)  extracted",
        f"layout-oriented   {synthesis_outcome.layout_calls:^7d} "
        f"parasitic estimates  {synthesis_outcome.elapsed:7.1f}  meets spec",
        f"traditional       {traditional.full_layout_rounds:^7d} "
        f"full generate+extract {traditional.elapsed:6.1f}  "
        f"{'meets spec' if traditional.converged else 'DNF'}",
    ]
    text = "\n".join(lines)
    (results_dir / "flow_comparison.txt").write_text(text + "\n")
    print("\n" + text)
    return synthesis_outcome, traditional


def test_benchmark_traditional_flow(benchmark, tech, specs):
    flow = TraditionalFlow(tech, max_rounds=6)
    outcome = benchmark.pedantic(flow.run, args=(specs,),
                                 rounds=1, iterations=1)
    assert outcome.converged


class TestFlowComparison:
    def test_traditional_converges_eventually(self, comparison):
        _oriented, traditional = comparison
        assert traditional.converged

    def test_traditional_needs_multiple_full_rounds(self, comparison):
        """The blind first sizing misses the extracted spec, forcing at
        least one compensation round."""
        _oriented, traditional = comparison
        assert traditional.full_layout_rounds >= 2

    def test_oriented_guarantees_spec_with_parasitics(self, comparison,
                                                      specs):
        oriented, _traditional = comparison
        metrics = oriented.sizing.predicted
        assert metrics.gbw >= specs.gbw * 0.98
        assert metrics.phase_margin_deg >= specs.phase_margin - 1.0

    def test_both_flows_land_on_similar_designs(self, comparison):
        """Same specs, same plan: the final currents agree within ~30%."""
        oriented, traditional = comparison
        i_oriented = oriented.sizing.currents["mp1"]
        i_traditional = traditional.sizing.currents["mp1"]
        assert i_traditional == pytest.approx(i_oriented, rel=0.5)

    def test_traditional_overdesigns(self, comparison, specs):
        """Compensation by target inflation overshoots the spec — the
        wasted power the paper attributes to over-estimation."""
        _oriented, traditional = comparison
        if traditional.full_layout_rounds >= 2:
            assert traditional.extracted.gbw > specs.gbw * 0.99
