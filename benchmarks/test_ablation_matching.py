"""Ablation A3 — the matching constraints (paper section 3).

"Special layout styles of transistors must be used in order to minimize
device mismatch" — quantified on the input pair with the two systematic
mechanisms separated:

* **VT gradient** (1 mV/mm): offset proportional to the centroid
  difference — nf pitches for a naive block placement, one pitch for
  ABAB interdigitation, zero for common centroid;
* **channel-orientation asymmetry** (the Figure 3 arrows): offset
  proportional to the per-device orientation imbalance.
"""

import pytest

from repro.layout.devices import differential_pair_layout
from repro.layout.matching import pair_offset_voltage
from repro.layout.stack import StackFinger, StackPlan, generate_stack
from repro.units import UM

GRADIENT = 1.0  # V/m == 1 mV/mm
NF = 4


def naive_plan() -> StackPlan:
    """All of A's fingers, then all of B's, uniform orientation: the
    placement a matching-blind flow would produce."""
    fingers = [
        StackFinger(device=device, drain_left=(i % 2 == 1))
        for device in ("a", "b")
        for i in range(NF)
    ]
    return StackPlan(fingers=fingers, units={"a": NF, "b": NF})


def interdigitated_plan(tech) -> StackPlan:
    layout = differential_pair_layout(
        tech, "p", 60 * UM, 1 * UM, NF,
        names=("a", "b"), drains=("da", "db"), gates=("ga", "gb"),
        source="s", bulk="w", style="interdigitated",
    )
    assert layout.plan is not None
    return layout.plan


def common_centroid_plan() -> StackPlan:
    return generate_stack({"a": NF, "b": NF})


@pytest.fixture(scope="module")
def comparison(tech, results_dir):
    pitch = tech.rules.gate_pitch
    plans = {
        "naive": naive_plan(),
        "interdigitated": interdigitated_plan(tech),
        "common_centroid": common_centroid_plan(),
    }
    gradient_only = {
        style: pair_offset_voltage(
            plan, ("a", "b"), pitch, veff=0.2,
            vth_gradient=GRADIENT, orientation_beta_error=0.0,
        )
        for style, plan in plans.items()
    }
    orientation_only = {
        style: pair_offset_voltage(
            plan, ("a", "b"), pitch, veff=0.2,
            vth_gradient=0.0, orientation_beta_error=0.002,
        )
        for style, plan in plans.items()
    }
    lines = [
        "input-pair style    gradient offset    orientation offset",
    ]
    for style in ("naive", "interdigitated", "common_centroid"):
        lines.append(
            f"{style:<19} {gradient_only[style] * 1e6:10.2f} uV"
            f"      {orientation_only[style] * 1e6:10.2f} uV"
        )
    text = "\n".join(lines)
    (results_dir / "ablation_matching.txt").write_text(text + "\n")
    print("\n" + text)
    return gradient_only, orientation_only


def test_benchmark_offset_evaluation(benchmark, tech):
    plan = common_centroid_plan()
    offset = benchmark(
        pair_offset_voltage, plan, ("a", "b"), tech.rules.gate_pitch, 0.2
    )
    assert offset == pytest.approx(0.0, abs=1e-9)


class TestGradientMechanism:
    def test_common_centroid_cancels_gradient(self, comparison):
        gradient_only, _orientation = comparison
        assert abs(gradient_only["common_centroid"]) < 1e-9

    def test_interdigitation_one_pitch_residual(self, comparison, tech):
        gradient_only, _orientation = comparison
        expected = GRADIENT * tech.rules.gate_pitch
        assert abs(gradient_only["interdigitated"]) == pytest.approx(
            expected, rel=0.01
        )

    def test_naive_residual_nf_pitches(self, comparison, tech):
        gradient_only, _orientation = comparison
        expected = GRADIENT * NF * tech.rules.gate_pitch
        assert abs(gradient_only["naive"]) == pytest.approx(expected, rel=0.01)

    def test_ordering(self, comparison):
        gradient_only, _orientation = comparison
        assert (
            abs(gradient_only["common_centroid"])
            < abs(gradient_only["interdigitated"])
            < abs(gradient_only["naive"])
        )


class TestOrientationMechanism:
    def test_common_centroid_balanced(self, comparison):
        _gradient, orientation_only = comparison
        assert abs(orientation_only["common_centroid"]) < 1e-9

    def test_some_style_pays_for_orientation(self, comparison):
        """At least one uncontrolled style leaves an orientation
        imbalance between the two devices (the Figure 3 effect)."""
        _gradient, orientation_only = comparison
        worst = max(abs(v) for v in orientation_only.values())
        assert worst > 10e-6
