"""Ablation A1 — the even-fold / internal-drain parasitic control.

Section 3 of the paper singles out one layout style as a design choice:
even fold counts with the drain on internal diffusions ("case (a)") halve
the drain junction capacitance on frequency-critical nets, and "this
parasitic control is used by the language to enhance the frequency
characteristics of the layout."

The ablation disables the preference (odd fold counts, drains reaching
the stack ends) and re-runs the case-4 flow: the fold-node capacitance
rises and the extracted circuit needs more margin for the same spec.
"""

import pytest

from repro.core.cases import run_case
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.layout.ota import OtaLayoutRequest, generate_ota_layout
from repro.sizing.specs import ParasiticMode


@pytest.fixture(scope="module")
def ablation(tech, specs, synthesis_outcome, results_dir):
    """Same converged sizes laid out with and without the control."""
    sizing = synthesis_outcome.sizing
    even = synthesis_outcome.feedback
    odd = generate_ota_layout(
        OtaLayoutRequest(
            technology=tech, sizes=sizing.sizes, currents=sizing.currents,
            aspect=1.0, prefer_even_folds=False,
        ),
        mode="estimate",
    ).report

    lines = ["device  nf(even)  ad(even) pm2   nf(odd)  ad(odd) pm2"]
    for name in sorted(even.devices):
        e, o = even.devices[name], odd.devices[name]
        lines.append(
            f"{name:<7} {e.nf:^8d} {e.geometry.ad * 1e12:10.2f}   "
            f"{o.nf:^7d} {o.geometry.ad * 1e12:10.2f}"
        )
    text = "\n".join(lines)
    (results_dir / "ablation_folding.txt").write_text(text + "\n")
    print("\n" + text)
    return even, odd


def test_benchmark_estimate_mode(benchmark, tech, synthesis_outcome):
    """Time one parasitic-calculation-mode layout call (the operation the
    paper requires to be fast, since 'it is normally called several times
    during circuit sizing')."""
    sizing = synthesis_outcome.sizing
    request = OtaLayoutRequest(
        technology=tech, sizes=sizing.sizes, currents=sizing.currents,
        aspect=1.0,
    )
    result = benchmark.pedantic(
        generate_ota_layout, args=(request,), kwargs={"mode": "estimate"},
        rounds=3, iterations=1,
    )
    assert result.cell is None


class TestFoldingAblation:
    def test_odd_folds_chosen_when_disabled(self, ablation):
        _even, odd = ablation
        multi_fold = [d for d in odd.devices.values() if d.nf > 1]
        assert any(d.nf % 2 == 1 for d in multi_fold)

    def test_drain_capacitance_rises(self, ablation):
        """The headline effect: total drain diffusion grows without the
        internal-drain control.  Odd fold counts asymptote to
        F = (Nf+1)/(2Nf), so at these fold counts the penalty is several
        percent of total drain area (it is much larger at low Nf — see
        the Figure 2 bench)."""
        even, odd = ablation
        even_total = sum(d.geometry.ad for d in even.devices.values())
        odd_total = sum(d.geometry.ad for d in odd.devices.values())
        assert odd_total > even_total * 1.03

    def test_fold_node_loading_rises(self, ablation):
        """Per-device view at the PM-critical folding nodes: the drain
        junctions of the cascodes and sinks grow."""
        even, odd = ablation
        for device in ("mn5", "mn6", "mn1c", "mn2c"):
            if odd.devices[device].nf > 1:
                assert odd.devices[device].geometry.ad > (
                    even.devices[device].geometry.ad * 1.04
                ), device

    def test_compensated_flow_still_converges(self, tech, specs):
        """The loop absorbs the worse style — at a cost, not a failure."""
        synthesizer = LayoutOrientedSynthesizer(
            tech, prefer_even_folds=False
        )
        outcome = synthesizer.run(specs, ParasiticMode.FULL, generate=False)
        metrics = outcome.sizing.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.02)
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=1.0
        )

    def test_control_saves_power_or_length(self, tech, specs,
                                           synthesis_outcome):
        """With the control disabled, the sizer must spend more: either a
        hotter cascode branch or shorter (lower-gain) cascodes."""
        baseline = synthesis_outcome.sizing
        ablated = LayoutOrientedSynthesizer(
            tech, prefer_even_folds=False
        ).run(specs, ParasiticMode.FULL, generate=False).sizing
        baseline_cost = (
            baseline.currents["mn1c"],
            -baseline.sizes["mn1c"][1],
        )
        ablated_cost = (
            ablated.currents["mn1c"],
            -ablated.sizes["mn1c"][1],
        )
        assert ablated_cost >= baseline_cost
