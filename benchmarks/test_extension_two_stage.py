"""Extension E1 — a second topology through the identical methodology.

The paper's conclusion claims the approach generalises ("The use of
hierarchy simplifies the addition of new topologies in the tool") and the
future work aims at larger systems.  This bench runs a two-stage Miller
OTA — whose layout generator is written in the CAIRO-style DSL — through
the *same* layout-oriented loop and extraction path, and checks the case-4
signature holds for it too.
"""

import pytest

from repro.core.cases import extract_and_measure
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.layout.two_stage_ota import (
    TwoStageLayoutRequest,
    generate_two_stage_layout,
)
from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.units import PF, UM


@pytest.fixture(scope="module")
def two_stage_specs():
    return OtaSpecs(
        vdd=3.3, gbw=30e6, phase_margin=60.0, cload=2 * PF,
        input_cm_range=(1.0, 2.0), output_range=(0.4, 2.9),
    )


@pytest.fixture(scope="module")
def outcome(tech, two_stage_specs, results_dir):
    plan = TwoStagePlan(tech)

    def layout_tool(sizing, mode):
        return generate_two_stage_layout(
            TwoStageLayoutRequest(
                technology=tech, sizes=sizing.sizes,
                currents=sizing.currents, cc=sizing.biases["_cc"],
            ),
            mode=mode,
        )

    synthesizer = LayoutOrientedSynthesizer(
        tech, plan=plan, layout_tool=layout_tool
    )
    result = synthesizer.run(
        two_stage_specs, ParasiticMode.FULL, generate=True
    )
    extracted = extract_and_measure(
        plan, result.sizing, two_stage_specs, result.layout, tech
    )

    metrics = result.sizing.predicted
    lines = [
        "two-stage OTA through the layout-oriented flow",
        f"layout calls        : {result.layout_calls}",
        f"GBW   syn(ext)  MHz : {metrics.gbw / 1e6:.1f}"
        f"({extracted.gbw / 1e6:.1f})",
        f"PM    syn(ext)  deg : {metrics.phase_margin_deg:.1f}"
        f"({extracted.phase_margin_deg:.1f})",
        f"gain  syn(ext)  dB  : {metrics.dc_gain_db:.1f}"
        f"({extracted.dc_gain_db:.1f})",
        f"layout size         : {result.layout.report.width / UM:.1f} x "
        f"{result.layout.report.height / UM:.1f} um",
    ]
    text = "\n".join(lines)
    (results_dir / "extension_two_stage.txt").write_text(text + "\n")
    print("\n" + text)

    from repro.layout.svg import write_svg

    write_svg(result.layout.cell,
              str(results_dir / "extension_two_stage.svg"), scale=8)
    return plan, result, extracted


def test_benchmark_two_stage_flow(benchmark, tech, two_stage_specs):
    plan = TwoStagePlan(tech)

    def layout_tool(sizing, mode):
        return generate_two_stage_layout(
            TwoStageLayoutRequest(
                technology=tech, sizes=sizing.sizes,
                currents=sizing.currents, cc=sizing.biases["_cc"],
            ),
            mode=mode,
        )

    synthesizer = LayoutOrientedSynthesizer(
        tech, plan=plan, layout_tool=layout_tool
    )
    result = benchmark.pedantic(
        synthesizer.run, args=(two_stage_specs,),
        kwargs={"mode": ParasiticMode.FULL, "generate": False},
        rounds=1, iterations=1,
    )
    assert result.converged


class TestSecondTopologySignature:
    def test_converges_in_few_calls(self, outcome):
        _plan, result, _extracted = outcome
        assert 2 <= result.layout_calls <= 6

    def test_meets_specs_with_parasitics(self, outcome, two_stage_specs):
        _plan, result, _extracted = outcome
        metrics = result.sizing.predicted
        assert metrics.gbw == pytest.approx(two_stage_specs.gbw, rel=0.03)
        assert metrics.phase_margin_deg >= two_stage_specs.phase_margin - 1.5

    def test_extraction_agrees(self, outcome):
        """The case-4 signature on the second topology."""
        _plan, result, extracted = outcome
        metrics = result.sizing.predicted
        assert extracted.gbw == pytest.approx(metrics.gbw, rel=0.05)
        assert extracted.phase_margin_deg == pytest.approx(
            metrics.phase_margin_deg, abs=2.5
        )

    def test_layout_is_drc_clean(self, outcome, tech):
        from repro.layout.drc import DrcChecker

        _plan, result, _extracted = outcome
        DrcChecker(tech).assert_clean(result.layout.cell)

    def test_miller_cap_drawn(self, outcome):
        from repro.layout.layers import Layer

        _plan, result, _extracted = outcome
        poly2 = [
            s for s in result.layout.cell.flattened()
            if s.layer is Layer.POLY2
        ]
        assert poly2, "expected a drawn double-poly Miller capacitor"
