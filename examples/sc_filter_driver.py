"""Future-work scenario: sizing the OTA for a switched-capacitor stage.

The paper closes with "Future work includes synthesis of larger systems
as switched capacitor filters and A/D converters using the same
methodology."  :mod:`repro.core.sc` takes that step: it derives the OTA
requirements of a switched-capacitor integrator (settling to half-LSB
accuracy within half a clock period) and drives the same layout-oriented
synthesis flow.

Usage::

    python examples/sc_filter_driver.py
"""

from __future__ import annotations

from repro import ParasiticMode, generic_060
from repro.core.sc import ScIntegratorSpecs, synthesize_sc_integrator
from repro.units import PF


def main() -> None:
    technology = generic_060()
    specs = ScIntegratorSpecs(
        clock=10e6,
        resolution_bits=10,
        sampling_cap=1 * PF,
        integration_cap=4 * PF,
        load_cap=1 * PF,
    )

    print("Switched-capacitor integrator requirements:")
    print(f"  clock {specs.clock / 1e6:.0f} MHz, {specs.resolution_bits} bits, "
          f"Cs={specs.sampling_cap / PF:.1f} pF, "
          f"Ci={specs.integration_cap / PF:.1f} pF")
    print(f"  feedback factor beta = {specs.feedback_factor:.2f}")
    print(f"  required GBW        = {specs.required_gbw() / 1e6:.1f} MHz")
    print(f"  effective load      = {specs.effective_load / PF:.2f} pF")
    print(f"  required slew rate  = "
          f"{specs.required_slew_rate() / 1e6:.1f} V/us")
    print(f"  required DC gain    = {specs.required_dc_gain():.0f} "
          f"({20 * __import__('math').log10(specs.required_dc_gain()):.1f} dB)")
    print()

    outcome = synthesize_sc_integrator(
        technology, specs, mode=ParasiticMode.FULL, generate=False
    )
    metrics = outcome.synthesis.sizing.predicted

    print("Synthesized OTA (layout-aware):")
    print(f"  GBW          {metrics.gbw / 1e6:7.1f} MHz "
          f"(target {outcome.ota_specs.gbw / 1e6:.1f})")
    print(f"  Phase margin {metrics.phase_margin_deg:7.1f} deg")
    print(f"  DC gain      {metrics.dc_gain_db:7.1f} dB")
    print(f"  Slew rate    {metrics.slew_rate / 1e6:7.1f} V/us "
          f"(needs {specs.required_slew_rate() / 1e6:.1f})")
    print(f"  Power        {metrics.power * 1e3:7.2f} mW")
    print(f"  Layout calls {outcome.synthesis.layout_calls}")
    print()
    print(f"  slew requirement : {'met' if outcome.slew_ok else 'NOT met'}")
    print(f"  gain requirement : {'met' if outcome.gain_ok else 'NOT met'}")
    print(f"  stage verdict    : {'PASS' if outcome.passed else 'NEEDS REWORK'}")


if __name__ == "__main__":
    main()
