"""Figure-3 scenario: a matched 1:3:6 current mirror via the CAIRO DSL.

Shows the procedural layout language: declare a mirror and its cascode,
arrange them in rows, state the net currents so the reliability rules can
size wires and contacts, then run both of the paper's modes — parasitic
calculation first, generation second.

Usage::

    python examples/current_mirror_layout.py
"""

from __future__ import annotations

import pathlib

from repro import generic_060
from repro.layout.cairo import CairoProgram
from repro.layout.svg import write_svg
from repro.units import UM


def main() -> None:
    technology = generic_060()

    program = CairoProgram(technology, "bias_mirror")
    # The paper's Figure 3 ratios, biased hot so the electromigration
    # rules visibly widen wires and add contact cuts.
    program.mirror(
        "mirror",
        "n",
        ratios={"m1": 1, "m2": 3, "m3": 6},
        unit_width=6 * UM,
        l=2 * UM,
        drains={"m1": "bias", "m2": "iout2", "m3": "iout3"},
        gate="bias",
        source="0",
        bulk="0",
        currents={"m1": 0.2e-3, "m2": 0.6e-3, "m3": 1.2e-3},
    )
    # A cascode device isolating the heavy output branch.
    program.device(
        "cascode", "n", 40 * UM, 1 * UM,
        nets=("iout3_casc", "vcas", "iout3", "0"),
        nf=4, current=1.2e-3,
    )
    program.row("mirror")
    program.row("cascode")
    program.net_current("iout3", 1.2e-3)
    program.net_current("iout2", 0.6e-3)
    program.shape(aspect=0.8)

    # Parasitic calculation mode: what the sizing tool would receive.
    report = program.calculate_parasitics()
    print("Parasitic calculation mode:")
    print(f"  block size {report.width / UM:.1f} x {report.height / UM:.1f} um")
    for name in sorted(report.devices):
        device = report.devices[name]
        print(f"  {name:<8} nf={device.nf:<2d} "
              f"ad={device.geometry.ad * 1e12:6.2f} pm^2 "
              f"pd={device.geometry.pd / UM:5.1f} um")
    for net in sorted(report.net_capacitance):
        print(f"  net {net:<12} {report.net_capacitance[net] * 1e15:6.1f} fF")
    print()

    # Generation mode.
    cell, _report = program.generate()
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "current_mirror.svg"
    write_svg(cell, str(path), scale=12)
    print(f"Generated layout written to {path}")

    # The matching story of Figure 3, in numbers.
    from repro.layout.devices import current_mirror_layout

    mirror = current_mirror_layout(
        technology, "n", {"m1": 1, "m2": 3, "m3": 6},
        unit_width=6 * UM, l=2 * UM,
        drains={"m1": "bias", "m2": "iout2", "m3": "iout3"},
        gate="bias", source="0", bulk="0",
        currents={"m1": 0.2e-3, "m2": 0.6e-3, "m3": 1.2e-3},
    )
    plan = mirror.plan
    print()
    print("Stack pattern:", plan.pattern())
    for device in ("m1", "m2", "m3"):
        print(f"  {device}: centroid offset {plan.centroid_offset(device):+.2f} "
              f"pitches, current-direction balance "
              f"{plan.orientation_balance(device):+d}")


if __name__ == "__main__":
    main()
