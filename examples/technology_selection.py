"""Technology characterisation and selection.

"A technology evaluation interface allows to easily characterize
different technologies and helps to choose the most suitable technology"
(paper section 4).  Compares the three bundled processes for the Table-1
specification and sizes the OTA in each.

Usage::

    python examples/technology_selection.py
"""

from __future__ import annotations

from repro import OtaSpecs, ParasiticMode, generic_035, generic_060, generic_080
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.technology.evaluation import TechnologyEvaluator, rank_technologies
from repro.units import PF


def main() -> None:
    technologies = [generic_080(), generic_060(), generic_035()]

    print("=== Characterisation (L = 2 Lmin, Veff = 0.2 V) ===")
    for technology in technologies:
        print(TechnologyEvaluator(technology).report().format())
        print()

    gbw_target = 65e6
    print(f"=== Ranking for GBW = {gbw_target / 1e6:.0f} MHz ===")
    for technology, headroom in rank_technologies(technologies, gbw_target):
        print(f"  {technology.name:<16} fT headroom {headroom:8.1f}x")
    print()

    print("=== Sizing the Table-1 OTA in each process ===")
    print(f"{'technology':<16} {'VDD':>4} {'Itail(uA)':>10} {'gain(dB)':>9} "
          f"{'power(mW)':>10}")
    for technology in technologies:
        vdd = technology.supply_nominal
        # Scale the voltage-range specs with the supply.
        scale = vdd / 3.3
        specs = OtaSpecs(
            vdd=vdd, gbw=gbw_target, phase_margin=65.0, cload=3 * PF,
            input_cm_range=(0.55 * scale, 1.84 * scale),
            output_range=(0.51 * scale, 2.31 * scale),
        )
        plan = FoldedCascodePlan(technology)
        result = plan.size(specs, ParasiticMode.SINGLE_FOLD)
        metrics = result.predicted
        print(
            f"{technology.name:<16} {vdd:>4.1f} "
            f"{result.currents['mp5'] * 1e6:>10.1f} "
            f"{metrics.dc_gain_db:>9.1f} {metrics.power * 1e3:>10.2f}"
        )


if __name__ == "__main__":
    main()
