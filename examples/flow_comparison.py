"""Traditional vs layout-oriented design flow (paper Figure 1).

Runs both flows on the Table-1 specification and prints what each one
cost: the traditional flow pays a full layout-generate/extract/simulate
round per compensation step, the layout-oriented flow only cheap
parasitic-calculation calls.

Usage::

    python examples/flow_comparison.py
"""

from __future__ import annotations

from repro import (
    LayoutOrientedSynthesizer,
    OtaSpecs,
    ParasiticMode,
    TraditionalFlow,
    generic_060,
)
from repro.units import PF


def main() -> None:
    technology = generic_060()
    specs = OtaSpecs(
        vdd=3.3, gbw=65e6, phase_margin=65.0, cload=3 * PF,
        input_cm_range=(0.55, 1.84), output_range=(0.51, 2.31),
    )

    print("=== Traditional flow (Figure 1a) ===")
    traditional = TraditionalFlow(technology, max_rounds=8).run(specs)
    for iteration in traditional.iterations:
        print(
            f"  round {iteration.index}: extracted GBW "
            f"{iteration.extracted.gbw / 1e6:5.1f} MHz "
            f"(shortfall {iteration.gbw_shortfall * 100:+5.1f} %), "
            f"PM {iteration.extracted.phase_margin_deg:5.1f} deg "
            f"(shortfall {iteration.pm_shortfall:+5.1f} deg)"
        )
    status = "converged" if traditional.converged else "NOT converged"
    print(f"  {status} after {traditional.full_layout_rounds} full "
          f"generate+extract rounds, {traditional.elapsed:.1f} s")
    print()

    print("=== Layout-oriented flow (Figure 1b) ===")
    synthesizer = LayoutOrientedSynthesizer(technology)
    oriented = synthesizer.run(specs, mode=ParasiticMode.FULL, generate=False)
    for record in oriented.records:
        distance = (
            "   --  " if record.distance == float("inf")
            else f"{record.distance * 1e15:6.2f}fF"
        )
        metrics = record.sizing.predicted
        print(
            f"  round {record.round_index}: parasitic change {distance}, "
            f"sized GBW {metrics.gbw / 1e6:5.1f} MHz, "
            f"PM {metrics.phase_margin_deg:5.1f} deg"
        )
    print(f"  converged after {oriented.layout_calls} parasitic-mode "
          f"layout calls, {oriented.elapsed:.1f} s")
    print()

    print("=== Outcome comparison ===")
    print(f"{'':24}{'traditional':>14}{'layout-oriented':>18}")
    rows = [
        ("extracted GBW (MHz)",
         traditional.extracted.gbw / 1e6,
         oriented.sizing.predicted.gbw / 1e6),
        ("extracted PM (deg)",
         traditional.extracted.phase_margin_deg,
         oriented.sizing.predicted.phase_margin_deg),
        ("power (mW)",
         traditional.extracted.power * 1e3,
         oriented.sizing.predicted.power * 1e3),
        ("full layout rounds",
         traditional.full_layout_rounds,
         0),
        ("wall time (s)",
         traditional.elapsed,
         oriented.elapsed),
    ]
    for label, a, b in rows:
        print(f"{label:<24}{a:>14.2f}{b:>18.2f}")


if __name__ == "__main__":
    main()
