"""Quickstart: layout-oriented synthesis of the paper's folded-cascode OTA.

Runs the full coupled loop of the paper (Figure 1b) on the Table-1
specification: size, call the layout tool in parasitic-calculation mode,
re-size with the reported parasitics, repeat until convergence, then
generate the physical layout and export it.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import pathlib

from repro import LayoutOrientedSynthesizer, OtaSpecs, ParasiticMode, generic_060
from repro.layout.gds import write_gds
from repro.layout.svg import write_svg
from repro.units import PF, UM


def main() -> None:
    technology = generic_060()
    specs = OtaSpecs(
        vdd=3.3,
        gbw=65e6,
        phase_margin=65.0,
        cload=3 * PF,
        input_cm_range=(0.55, 1.84),
        output_range=(0.51, 2.31),
    )

    print(f"Technology : {technology.name}")
    print(f"Target     : GBW {specs.gbw / 1e6:.0f} MHz, "
          f"PM {specs.phase_margin:.0f} deg, CL {specs.cload / PF:.0f} pF")
    print()

    synthesizer = LayoutOrientedSynthesizer(technology, aspect=1.0)
    outcome = synthesizer.run(specs, mode=ParasiticMode.FULL, generate=True)

    print(f"Converged in {outcome.layout_calls} layout-tool calls "
          f"({outcome.elapsed:.1f} s)")
    for record in outcome.records:
        distance = (
            "     --" if record.distance == float("inf")
            else f"{record.distance * 1e15:6.2f} fF"
        )
        print(f"  round {record.round_index}: parasitic change {distance}")
    print()

    metrics = outcome.sizing.predicted
    print("Synthesized performance (with layout parasitics):")
    print(f"  DC gain          {metrics.dc_gain_db:7.1f} dB")
    print(f"  GBW              {metrics.gbw / 1e6:7.1f} MHz")
    print(f"  Phase margin     {metrics.phase_margin_deg:7.1f} deg")
    print(f"  Slew rate        {metrics.slew_rate / 1e6:7.1f} V/us")
    print(f"  CMRR             {metrics.cmrr_db:7.1f} dB")
    print(f"  Output res.      {metrics.output_resistance / 1e6:7.2f} Mohm")
    print(f"  Input noise      {metrics.input_noise_rms * 1e6:7.1f} uV rms")
    print(f"  Power            {metrics.power * 1e3:7.2f} mW")
    print()

    print("Device sizes (W/L in um) and folds:")
    for name in sorted(outcome.sizing.sizes):
        width, length = outcome.sizing.sizes[name]
        info = outcome.feedback.devices[name]
        print(f"  {name:<5} {width / UM:7.1f} / {length / UM:4.2f}   "
              f"nf={info.nf:<3d} finger={info.finger_width / UM:5.2f} um")
    print()

    layout = outcome.layout
    assert layout is not None and layout.cell is not None
    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    write_svg(layout.cell, str(out_dir / "quickstart_ota.svg"), scale=6)
    write_gds(layout.cell, str(out_dir / "quickstart_ota.gds"))
    print(f"Layout: {layout.report.width / UM:.1f} x "
          f"{layout.report.height / UM:.1f} um -> "
          f"{out_dir / 'quickstart_ota.svg'}")


if __name__ == "__main__":
    main()
