"""Design-space exploration with the fast sizing tool.

"The fact that the sizing process is very fast and highly accurate allows
interactive exploration of wide variety of design space points" (paper
section 4).  This example sweeps the GBW target and the load capacitance
and tabulates power, gain and area trade-offs.

Usage::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro import OtaSpecs, ParasiticMode, generic_060
from repro.layout.ota import OtaLayoutRequest, generate_ota_layout
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.units import PF, UM


def main() -> None:
    technology = generic_060()
    plan = FoldedCascodePlan(technology)

    print("GBW sweep at CL = 3 pF")
    print(f"{'GBW(MHz)':>9} {'Itail(uA)':>10} {'gain(dB)':>9} "
          f"{'noise(uV)':>10} {'power(mW)':>10} {'area(um^2)':>11} {'t(s)':>6}")
    for gbw_mhz in (20, 40, 65, 100, 150):
        specs = OtaSpecs(
            vdd=3.3, gbw=gbw_mhz * 1e6, phase_margin=65.0, cload=3 * PF,
            input_cm_range=(0.55, 1.84), output_range=(0.51, 2.31),
        )
        started = time.perf_counter()
        result = plan.size(specs, ParasiticMode.SINGLE_FOLD)
        elapsed = time.perf_counter() - started
        layout = generate_ota_layout(
            OtaLayoutRequest(
                technology=technology, sizes=result.sizes,
                currents=result.currents, aspect=1.0,
            ),
            mode="estimate",
        )
        metrics = result.predicted
        print(
            f"{gbw_mhz:>9} {result.currents['mp5'] * 1e6:>10.1f} "
            f"{metrics.dc_gain_db:>9.1f} "
            f"{metrics.input_noise_rms * 1e6:>10.1f} "
            f"{metrics.power * 1e3:>10.2f} "
            f"{layout.report.area / UM**2:>11.0f} {elapsed:>6.2f}"
        )

    print()
    print("Load sweep at GBW = 65 MHz")
    print(f"{'CL(pF)':>7} {'Itail(uA)':>10} {'SR(V/us)':>9} {'power(mW)':>10}")
    for cl_pf in (1, 2, 3, 5, 8):
        specs = OtaSpecs(
            vdd=3.3, gbw=65e6, phase_margin=65.0, cload=cl_pf * PF,
            input_cm_range=(0.55, 1.84), output_range=(0.51, 2.31),
        )
        result = plan.size(specs, ParasiticMode.SINGLE_FOLD)
        metrics = result.predicted
        print(
            f"{cl_pf:>7} {result.currents['mp5'] * 1e6:>10.1f} "
            f"{metrics.slew_rate / 1e6:>9.1f} {metrics.power * 1e3:>10.2f}"
        )


if __name__ == "__main__":
    main()
