"""A complete analog block in the CAIRO-style layout language.

Lays out a bias distribution block — current mirror, RC supply filter and
decoupling capacitor, with its substrate tap — entirely through the
procedural DSL, then runs both of the paper's modes and checks the result
against the design rules.

Usage::

    python examples/bias_filter_block.py
"""

from __future__ import annotations

import pathlib

from repro import generic_060
from repro.layout.cairo import CairoProgram
from repro.layout.drc import DrcChecker
from repro.layout.svg import write_svg
from repro.units import PF, UM


def main() -> None:
    technology = generic_060()

    program = CairoProgram(technology, "bias_filter")
    # 1:2:4 mirror distributing a 50 uA reference.
    program.mirror(
        "mirror", "n",
        ratios={"mref": 1, "mout1": 2, "mout2": 4},
        unit_width=8 * UM, l=2 * UM,
        drains={"mref": "iref", "mout1": "ibias1", "mout2": "ibias2"},
        gate="iref", source="0", bulk="0",
        currents={"mref": 50e-6, "mout1": 100e-6, "mout2": 200e-6},
    )
    # RC low-pass on the mirror gate: 20 kohm into 2 pF.
    program.resistor("rfilt", 20e3, "iref", "iref_q")
    program.capacitor("cfilt", 2 * PF, net_top="iref_q", net_bottom="0")
    # Substrate tap for the NMOS region.
    program.tap("ptap", "substrate", "0", 12 * UM)

    program.row("mirror", "ptap")
    program.row("rfilt", "cfilt")
    program.net_current("ibias2", 200e-6)
    program.net_current("ibias1", 100e-6)
    program.net_current("0", 350e-6)
    program.shape(aspect=1.0)

    report = program.calculate_parasitics()
    print("Parasitic calculation mode:")
    print(f"  block {report.width / UM:.1f} x {report.height / UM:.1f} um")
    print(f"  filtered node iref_q : "
          f"{report.net_capacitance.get('iref_q', 0.0) * 1e15:.1f} fF wiring "
          "(plus the drawn 2 pF)")
    for device in sorted(report.devices):
        info = report.devices[device]
        print(f"  {device:<6} nf={info.nf} "
              f"ad={info.geometry.ad * 1e12:6.2f} pm^2")

    cell, _ = program.generate()
    DrcChecker(technology).assert_clean(cell)
    print("\nGenerated layout is DRC-clean "
          f"({sum(1 for _ in cell.flattened())} shapes).")

    out_dir = pathlib.Path(__file__).parent / "output"
    out_dir.mkdir(exist_ok=True)
    path = out_dir / "bias_filter.svg"
    write_svg(cell, str(path), scale=10)
    print(f"Layout written to {path}")


if __name__ == "__main__":
    main()
